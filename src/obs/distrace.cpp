#include "obs/distrace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_set>

namespace rev::obs {

namespace {

// splitmix64 finalizer — the same stateless mixer the fault stack uses, so
// every deterministic id in the repo comes from one well-studied function.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof(buf) - 1));
}

char HexDigit(std::uint64_t v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

void AppendHex64(std::string& out, std::uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(HexDigit((v >> shift) & 0xF));
}

bool ParseHex64(std::string_view s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint64_t>(c - 'A' + 10);
    else return false;
  }
  *out = v;
  return true;
}

}  // namespace

const char* InternName(std::string_view s) {
  // Node-based set: element addresses are stable across rehashes, so the
  // c_str() handed out lives for the process lifetime. The table is leaked
  // on purpose — interned names may be read from static destructors.
  static std::mutex* mu = new std::mutex();
  static std::unordered_set<std::string>* table =
      new std::unordered_set<std::string>();
  std::lock_guard lock(*mu);
  return table->emplace(s).first->c_str();
}

std::string TraceId::Hex() const {
  std::string out;
  out.reserve(32);
  AppendHex64(out, hi);
  AppendHex64(out, lo);
  return out;
}

TraceId MakeTraceId(std::uint64_t seed_a, std::uint64_t seed_b) {
  TraceId id;
  id.hi = Mix64(seed_a ^ 0x7261CE1Dull);
  id.lo = Mix64(Mix64(seed_b) ^ id.hi);
  if (!id.valid()) id.lo = 1;  // all-zero is the "no trace" sentinel
  return id;
}

std::uint64_t DeriveSpanId(const SpanContext& parent, std::uint64_t salt) {
  const std::uint64_t id =
      Mix64(parent.trace.lo ^ Mix64(parent.span ^ Mix64(salt)));
  return id != 0 ? id : 1;
}

std::uint64_t RootSpanId(const TraceId& trace) {
  const std::uint64_t id = Mix64(trace.hi ^ Mix64(trace.lo));
  return id != 0 ? id : 1;
}

std::string FormatTraceparent(const SpanContext& context) {
  std::string out;
  out.reserve(55);
  out += "00-";
  AppendHex64(out, context.trace.hi);
  AppendHex64(out, context.trace.lo);
  out += '-';
  AppendHex64(out, context.span);
  out += "-01";
  return out;
}

bool ParseTraceparent(std::string_view header, SpanContext* out) {
  // "00-" + 32 hex + "-" + 16 hex + "-01" = 55 chars.
  if (header.size() != 55) return false;
  if (header.substr(0, 3) != "00-" || header[35] != '-' || header[52] != '-')
    return false;
  SpanContext context;
  if (!ParseHex64(header.substr(3, 16), &context.trace.hi)) return false;
  if (!ParseHex64(header.substr(19, 16), &context.trace.lo)) return false;
  if (!ParseHex64(header.substr(36, 16), &context.span)) return false;
  if (!context.valid()) return false;
  *out = context;
  return true;
}

std::uint64_t VirtualNs(util::Timestamp now, double offset_seconds) {
  const std::uint64_t base =
      now > 0 ? static_cast<std::uint64_t>(now) * 1'000'000'000ull : 0;
  if (offset_seconds <= 0) return base;
  return base + static_cast<std::uint64_t>(offset_seconds * 1e9 + 0.5);
}

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kInternal: return "internal";
    case SpanKind::kClient: return "client";
    case SpanKind::kServer: return "server";
  }
  return "?";
}

DistTraceCollector::DistTraceCollector() {
  const char* env = std::getenv("REV_DIST_TRACE");
  if (env != nullptr && env[0] != '\0') Enable();
}

DistTraceCollector& DistTraceCollector::Global() {
  // Leaked on purpose, like the metrics registry: spans may be recorded
  // from static destructors.
  static DistTraceCollector* collector = new DistTraceCollector();
  return *collector;
}

void DistTraceCollector::Clear() {
  std::lock_guard lock(mu_);
  spans_.clear();
}

void DistTraceCollector::Record(const DistSpan& span) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  spans_.push_back(span);
}

std::size_t DistTraceCollector::size() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

namespace {

void SortSpans(std::vector<DistSpan>& spans) {
  std::sort(spans.begin(), spans.end(),
            [](const DistSpan& a, const DistSpan& b) {
              if (a.trace != b.trace) return a.trace < b.trace;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span < b.span;
            });
}

}  // namespace

std::vector<DistSpan> DistTraceCollector::Snapshot() const {
  std::vector<DistSpan> out;
  {
    std::lock_guard lock(mu_);
    out = spans_;
  }
  SortSpans(out);
  return out;
}

std::vector<DistSpan> DistTraceCollector::SnapshotTrace(
    const TraceId& trace) const {
  std::vector<DistSpan> out;
  {
    std::lock_guard lock(mu_);
    for (const DistSpan& span : spans_)
      if (span.trace == trace) out.push_back(span);
  }
  SortSpans(out);
  return out;
}

std::string DistTraceCollector::DumpJson(const std::vector<DistSpan>& spans) {
  std::string out = "{\"spans\":[\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const DistSpan& s = spans[i];
    out += "{\"trace\":\"";
    out += s.trace.Hex();
    out += "\",\"span\":\"";
    AppendHex64(out, s.span);
    out += "\",\"parent\":\"";
    AppendHex64(out, s.parent);
    AppendF(out,
            "\",\"name\":\"%s\",\"node\":\"%s\",\"kind\":\"%s\","
            "\"status\":%" PRId32 ",\"start_ns\":%" PRIu64
            ",\"dur_ns\":%" PRIu64 "}%s\n",
            s.name, s.node, SpanKindName(s.kind), s.status, s.start_ns,
            s.dur_ns(), i + 1 < spans.size() ? "," : "");
  }
  out += "]}\n";
  return out;
}

bool DistTraceCollector::WriteJson(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = DumpJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

bool DistTraceCollector::ExportFromEnv() const {
  const char* path = std::getenv("REV_DIST_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  return WriteJson(path);
}

namespace {

// Recursive attribution: tile [lo, hi) of `span` between its children and
// itself, walking children latest-end-first so overlapping siblings
// (hedge legs) resolve to the leg that finished last — the one the caller
// actually waited on. Zero-duration spans never claim a tile.
void Attribute(const DistSpan& span,
               const std::map<std::uint64_t, std::vector<const DistSpan*>>&
                   children_of,
               std::uint64_t lo, std::uint64_t hi,
               std::vector<PathSegment>* out) {
  std::vector<const DistSpan*> kids;
  const auto it = children_of.find(span.span);
  if (it != children_of.end()) kids = it->second;
  std::sort(kids.begin(), kids.end(), [](const DistSpan* a, const DistSpan* b) {
    if (a->end_ns != b->end_ns) return a->end_ns > b->end_ns;
    return a->span < b->span;
  });

  std::uint64_t cursor = hi;
  for (const DistSpan* kid : kids) {
    if (cursor <= lo) break;
    const std::uint64_t kid_end = std::min(kid->end_ns, cursor);
    const std::uint64_t kid_start = std::max(kid->start_ns, lo);
    if (kid_end <= kid_start) continue;  // clipped away or zero-duration
    if (kid_end < cursor) {
      // The stretch after this child and before the previous tile is the
      // parent's own time (queueing, local work, waiting gaps).
      out->push_back({span.span, span.name, span.node, kid_end, cursor});
    }
    Attribute(*kid, children_of, kid_start, kid_end, out);
    cursor = kid_start;
  }
  if (cursor > lo) out->push_back({span.span, span.name, span.node, lo, cursor});
}

}  // namespace

std::vector<PathSegment> CriticalPath(const std::vector<DistSpan>& spans) {
  std::vector<PathSegment> out;
  if (spans.empty()) return out;

  std::map<std::uint64_t, const DistSpan*> by_id;
  for (const DistSpan& span : spans) by_id.emplace(span.span, &span);
  const DistSpan* root = nullptr;
  std::map<std::uint64_t, std::vector<const DistSpan*>> children_of;
  for (const DistSpan& span : spans) {
    if (span.parent == 0 || by_id.find(span.parent) == by_id.end()) {
      // Root = the earliest-starting span with no resolvable parent.
      if (root == nullptr || span.start_ns < root->start_ns ||
          (span.start_ns == root->start_ns && span.span < root->span))
        root = &span;
    } else {
      children_of[span.parent].push_back(&span);
    }
  }
  if (root == nullptr || root->end_ns <= root->start_ns) return out;

  Attribute(*root, children_of, root->start_ns, root->end_ns, &out);
  std::sort(out.begin(), out.end(),
            [](const PathSegment& a, const PathSegment& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

}  // namespace rev::obs
