// Distributed tracing over the simulated fleet: one causal tree per
// request, stitched across every node it touched.
//
// The per-process TraceCollector (trace.h) answers "where did the wall
// clock go inside this process". This layer answers the cross-node
// question the fleet raised: a hedged OCSP query crosses a client, two or
// three replicas, and the retry stack — which hop, queue, or backoff ate
// the latency? Spans here live on the *virtual* clock (SimNet seconds),
// carry explicit 128-bit trace ids + 64-bit span ids, and propagate over
// the wire in a W3C-traceparent-style header on net::HttpRequest, so the
// merged Snapshot() of all simulated nodes stitches into one tree.
//
// Determinism is a hard requirement (the fleet bench byte-compares its
// artifacts across thread counts): ids are derived from seeded
// per-request state via splitmix64 — never from wall clock, thread ids,
// or allocation order — and Snapshot() sorts by (trace, start, span), so
// the same seed yields the same trace at any thread count.
//
// Span/node names may be dynamic ("replica-3.fleet.sim"): InternName()
// maps equal contents to one stable const char* for the process lifetime,
// so spans stay POD and recording stays allocation-free after warm-up.
//
// Export: DumpJson() ({"spans":[...]}, rendered by tools/trace2txt -d) and
// CriticalPath(), which tiles a root span's [start, end] into segments
// attributed to the deepest span covering each instant — the segments sum
// to the root's duration exactly by construction. See
// docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace rev::obs {

// Stable interned copy of `s`: equal contents always return the same
// pointer, valid for the process lifetime. Thread-safe.
const char* InternName(std::string_view s);

// 128-bit trace id. All-zero means "no trace".
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool valid() const { return (hi | lo) != 0; }
  friend bool operator==(const TraceId& a, const TraceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const TraceId& a, const TraceId& b) {
    return !(a == b);
  }
  friend bool operator<(const TraceId& a, const TraceId& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
  std::string Hex() const;  // 32 lowercase hex digits
};

// A span's identity within its trace, as carried by the wire header.
struct SpanContext {
  TraceId trace;
  std::uint64_t span = 0;

  bool valid() const { return trace.valid() && span != 0; }
};

// Deterministic id minting: splitmix64 over caller-provided seeds. The
// caller owns uniqueness of the (seed_a, seed_b) pair (e.g. client seed ×
// query counter); the mix only decorrelates.
TraceId MakeTraceId(std::uint64_t seed_a, std::uint64_t seed_b);
// Child span id from a parent context and a caller-chosen salt (attempt
// index, hop kind). Never returns 0.
std::uint64_t DeriveSpanId(const SpanContext& parent, std::uint64_t salt);
// Root span id for a fresh trace.
std::uint64_t RootSpanId(const TraceId& trace);

// Wire format: "00-<32 hex trace>-<16 hex span>-01", the W3C traceparent
// shape. Parse accepts exactly that shape and rejects all-zero ids.
inline constexpr const char* kTraceparentHeader = "traceparent";
std::string FormatTraceparent(const SpanContext& context);
bool ParseTraceparent(std::string_view header, SpanContext* out);

// Virtual-clock nanoseconds: `now` is SimNet's integer-second timestamp,
// `offset_seconds` the fractional simulated time since it. Fits uint64
// comfortably for the 2015-era epochs the simulation uses.
std::uint64_t VirtualNs(util::Timestamp now, double offset_seconds);

enum class SpanKind : std::uint8_t {
  kInternal = 0,  // in-process work (backoff waits, queue time)
  kClient = 1,    // a wire exchange, observed from the calling side
  kServer = 2,    // request handling, observed on the serving node
};
const char* SpanKindName(SpanKind kind);

struct DistSpan {
  TraceId trace;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;    // 0 = root
  const char* name = "";       // interned (InternName) or a literal
  const char* node = "";       // which simulated node recorded it
  SpanKind kind = SpanKind::kInternal;
  // HTTP status of the hop (0 = none/n.a.); negative values carry a
  // net::FetchError for failed exchanges (-1 - int(error)).
  std::int32_t status = 0;
  std::uint64_t start_ns = 0;  // virtual clock (VirtualNs)
  std::uint64_t end_ns = 0;

  std::uint64_t dur_ns() const {
    return end_ns > start_ns ? end_ns - start_ns : 0;
  }
};

// Process-wide collector for distributed spans. Disabled by default (one
// relaxed load per would-be span); REV_DIST_TRACE=<path> in the
// environment arms it at startup, benches enable it around showcase runs.
class DistTraceCollector {
 public:
  static DistTraceCollector& Global();

  DistTraceCollector(const DistTraceCollector&) = delete;
  DistTraceCollector& operator=(const DistTraceCollector&) = delete;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Clear();
  void Record(const DistSpan& span);
  std::size_t size() const;

  // All spans, sorted by (trace, start_ns, span id) — a deterministic
  // order for a deterministic id/timestamp scheme, independent of the
  // thread interleaving that recorded them.
  std::vector<DistSpan> Snapshot() const;
  // Only the spans of `trace`, same order.
  std::vector<DistSpan> SnapshotTrace(const TraceId& trace) const;

  // {"spans":[{"trace":…,"span":…,"parent":…,"name":…,"node":…,"kind":…,
  //   "status":…,"start_ns":…,"dur_ns":…},…]}
  static std::string DumpJson(const std::vector<DistSpan>& spans);
  std::string DumpJson() const { return DumpJson(Snapshot()); }
  bool WriteJson(const std::string& path) const;
  // Writes DumpJson() to $REV_DIST_TRACE if set; returns whether it wrote.
  bool ExportFromEnv() const;

 private:
  DistTraceCollector();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<DistSpan> spans_;
};

// One tile of a root span's critical path: [start_ns, end_ns) attributed
// to `span` (the deepest span covering the interval when walking latest-
// ending children first — concurrent hedge legs resolve to whichever leg
// finished last, i.e. the one the caller actually waited on).
struct PathSegment {
  std::uint64_t span = 0;
  const char* name = "";
  const char* node = "";
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;

  std::uint64_t dur_ns() const {
    return end_ns > start_ns ? end_ns - start_ns : 0;
  }
};

// Critical path of the trace in `spans` (all spans must share one trace;
// the root is the span whose parent is absent). The returned segments are
// ordered by start time and tile the root's [start_ns, end_ns) exactly, so
// their durations sum to the root's duration — the property the fleet
// bench gates on. Empty input (or no root) yields an empty path.
std::vector<PathSegment> CriticalPath(const std::vector<DistSpan>& spans);

}  // namespace rev::obs
