#include "obs/slo.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace rev::obs {

namespace {

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof(buf) - 1));
}

}  // namespace

SloMonitor::Tally& SloMonitor::State::WindowAt(std::int64_t index) {
  auto it = std::lower_bound(
      windows.begin(), windows.end(), index,
      [](const std::pair<std::int64_t, Tally>& w, std::int64_t i) {
        return w.first < i;
      });
  if (it == windows.end() || it->first != index)
    it = windows.insert(it, {index, Tally{}});
  return it->second;
}

void SloMonitor::AddObjective(SloObjective objective) {
  if (objective.window_seconds <= 0) objective.window_seconds = 60;
  if (objective.short_windows <= 0) objective.short_windows = 1;
  if (objective.long_windows < objective.short_windows)
    objective.long_windows = objective.short_windows;
  objectives_.push_back(objective);
  State state;
  state.objective = std::move(objective);
  states_.push_back(std::move(state));
}

void SloMonitor::Record(std::string_view name, util::Timestamp t,
                        std::uint64_t good, std::uint64_t total) {
  if (total == 0) return;
  if (good > total) good = total;
  for (State& state : states_) {
    if (state.objective.name != name) continue;
    const std::int64_t index =
        t >= 0 ? t / state.objective.window_seconds
               : (t - (state.objective.window_seconds - 1)) /
                     state.objective.window_seconds;
    Tally& tally = state.WindowAt(index);
    tally.good += good;
    tally.total += total;
  }
}

namespace {

// Burn rate over a window range: error-rate / error-budget. A service
// exactly meeting its objective burns at 1.0; the alert thresholds are
// multiples of that.
double BurnRate(std::uint64_t good, std::uint64_t total, double objective) {
  if (total == 0) return 0.0;
  const double error_rate =
      static_cast<double>(total - good) / static_cast<double>(total);
  const double budget = 1.0 - objective;
  if (budget <= 0.0) return error_rate > 0.0 ? 1e9 : 0.0;
  return error_rate / budget;
}

}  // namespace

std::vector<SloMonitor::Alert> SloMonitor::AlertTimeline() const {
  // Collect every window index any objective saw, so the timeline is in
  // global virtual-time order with objectives interleaved deterministically
  // (registration order within one window).
  std::vector<Alert> timeline;
  std::vector<std::int64_t> indices;
  for (const State& state : states_)
    for (const auto& [index, tally] : state.windows) indices.push_back(index);
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());

  for (const std::int64_t index : indices) {
    for (const State& state : states_) {
      const SloObjective& o = state.objective;
      // Sum tallies over [index - k + 1, index] for the short and long
      // ranges. windows is sorted, and typically tiny (one entry per
      // bench tick), so a linear scan is fine.
      std::uint64_t short_good = 0, short_total = 0;
      std::uint64_t long_good = 0, long_total = 0;
      bool saw_this_window = false;
      for (const auto& [w, tally] : state.windows) {
        if (w > index) break;
        if (w == index) saw_this_window = true;
        if (w > index - o.long_windows) {
          long_good += tally.good;
          long_total += tally.total;
        }
        if (w > index - o.short_windows) {
          short_good += tally.good;
          short_total += tally.total;
        }
      }
      if (!saw_this_window || short_total == 0) continue;
      const double short_burn = BurnRate(short_good, short_total, o.objective);
      const double long_burn = BurnRate(long_good, long_total, o.objective);
      if (short_burn > o.burn_threshold && long_burn > o.burn_threshold) {
        Alert alert;
        alert.objective = o.name;
        alert.window_start = index * o.window_seconds;
        alert.window_end = (index + 1) * o.window_seconds;
        alert.short_burn = short_burn;
        alert.long_burn = long_burn;
        timeline.push_back(std::move(alert));
      }
    }
  }
  return timeline;
}

std::string SloMonitor::TimelineJson() const {
  std::string out = "{\"objectives\": [";
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& o = objectives_[i];
    AppendF(out,
            "%s{\"name\": \"%s\", \"objective\": %.6f, \"window_s\": %" PRId64
            ", \"short_windows\": %d, \"long_windows\": %d, "
            "\"burn_threshold\": %.3f}",
            i > 0 ? ", " : "", o.name.c_str(), o.objective, o.window_seconds,
            o.short_windows, o.long_windows, o.burn_threshold);
  }
  out += "], \"alert_timeline\": [";
  const std::vector<Alert> timeline = AlertTimeline();
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const Alert& a = timeline[i];
    AppendF(out,
            "%s{\"objective\": \"%s\", \"from_s\": %" PRId64
            ", \"to_s\": %" PRId64
            ", \"short_burn\": %.3f, \"long_burn\": %.3f}",
            i > 0 ? ", " : "", a.objective.c_str(),
            static_cast<std::int64_t>(a.window_start),
            static_cast<std::int64_t>(a.window_end), a.short_burn,
            a.long_burn);
  }
  out += "]}";
  return out;
}

const std::vector<SloObjective>& SloMonitor::objectives() const {
  return objectives_;
}

}  // namespace rev::obs
