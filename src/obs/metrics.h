// Process-wide metrics: named instruments cheap enough to update on the
// ~790k-QPS serving hot path, exported as one snapshot.
//
//   Counter    — monotonic, sharded across cache lines so concurrent
//                writers do not bounce one atomic (Add is a relaxed
//                fetch_add on a per-thread-slot shard; Value sums shards).
//   Gauge      — a level (queue depth, in-flight work), same sharding;
//                Add/Sub from any thread, Set for single-writer gauges.
//   Histogram  — lock-free fixed-bucket log2 histogram over uint64 values
//                (latencies in nanoseconds by convention): Record() is a
//                handful of relaxed atomic ops, no mutex anywhere.
//
// Instruments live in a MetricsRegistry keyed by name. Labels ride inside
// the name ("serve.requests{frontend=3}") so the registry stays one flat
// sorted namespace; per-instance objects append an instance label to keep
// their tallies exact when several instances coexist (tests, sweeps).
// Registered instruments are never destroyed, so a `Counter&` obtained
// once may be cached and updated forever without re-locking the registry.
//
// Exposition: DumpText() (one line per instrument, Prometheus-flavoured),
// DumpJson() (a stable schema consumed by the BENCH_*.json metrics block
// and round-trip tested in tests/obs_test.cpp), and Snapshot() for
// programmatic access. See docs/observability.md.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rev::obs {

namespace internal {

// One cache line per shard so unrelated writers never share a line.
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};
struct alignas(64) PaddedI64 {
  std::atomic<std::int64_t> v{0};
};

// Stable small integer for the calling thread, used to pick a shard.
std::size_t ThreadSlot();

}  // namespace internal

inline constexpr std::size_t kInstrumentShards = 16;  // power of two
static_assert((kInstrumentShards & (kInstrumentShards - 1)) == 0);

// Monotonic counter. Add/Value are safe from any thread; Value() is a sum
// over shards and is exact once concurrent writers have finished (each
// increment lands in exactly one shard).
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    shards_[internal::ThreadSlot() & (kInstrumentShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<internal::PaddedU64, kInstrumentShards> shards_;
};

// A level that can move both ways (queue depth, in-flight requests).
// Add/Sub are sharded like Counter; Set() is for single-writer gauges only
// (it rewrites every shard and can lose a concurrent Add).
class Gauge {
 public:
  void Add(std::int64_t delta) {
    shards_[internal::ThreadSlot() & (kInstrumentShards - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Sub(std::int64_t delta) { Add(-delta); }

  void Set(std::int64_t value) {
    for (std::size_t i = 1; i < shards_.size(); ++i)
      shards_[i].v.store(0, std::memory_order_relaxed);
    shards_[0].v.store(value, std::memory_order_relaxed);
  }

  std::int64_t Value() const {
    std::int64_t total = 0;
    for (const auto& shard : shards_)
      total += shard.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<internal::PaddedI64, kInstrumentShards> shards_;
};

// A trace id attached to a histogram bucket: the most recent traced
// request that landed in that bucket, linking "the p99 bucket" to a
// reconstructable distributed trace (see distrace.h). All-zero = none.
struct Exemplar {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
  std::string Hex() const;  // 32 lowercase hex digits
};

// Snapshot of a Histogram at one instant. Bucket i holds values whose
// bit_width is i (bucket 0 is the literal value 0), i.e. bucket i covers
// [2^(i-1), 2^i - 1] for i >= 1.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, 65> buckets{};
  // exemplars[i] = last traced value recorded into bucket i (if any).
  std::array<Exemplar, 65> exemplars{};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Linear interpolation inside the containing log2 bucket; exact at the
  // bucket boundaries, within a factor of 2 inside. Returns 0 when empty.
  double Quantile(double q) const;

  static std::uint64_t BucketLowerBound(std::size_t i);
  static std::uint64_t BucketUpperBound(std::size_t i);
};

// Lock-free fixed-bucket (log2) histogram over uint64 values. By
// convention durations are recorded in nanoseconds and the instrument name
// carries a `_ns` suffix. Record() performs 3 relaxed fetch_adds plus two
// load-compare(-CAS) min/max updates that almost always skip the CAS after
// warm-up. A concurrent Snapshot() may observe count/sum/buckets at
// slightly different instants; totals are exact once writers quiesce.
class Histogram {
 public:
  void Record(std::uint64_t value);
  // Records `value` `count` times with one pass over the atomics — the
  // batched serve path reports a whole batch's amortized per-request
  // latency without paying per-request fetch_adds.
  void RecordMany(std::uint64_t value, std::uint64_t count);
  void RecordSeconds(double seconds) {
    Record(seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9));
  }
  void RecordSecondsMany(double seconds, std::uint64_t count) {
    RecordMany(seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9),
               count);
  }

  // Record() plus an exemplar: remember `trace` as the most recent traced
  // value in the bucket `value` lands in. The exemplar table is tiny and
  // mutex-guarded (traced requests are a slow-path minority); the plain
  // Record() hot path is untouched. A zero trace records no exemplar.
  void RecordWithExemplar(std::uint64_t value, const Exemplar& trace);
  void RecordSecondsWithExemplar(double seconds, const Exemplar& trace) {
    RecordWithExemplar(
        seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9), trace);
  }

  HistogramSnapshot Snapshot() const;
  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, 65> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
  mutable std::mutex ex_mu_;  // guards exemplars_ only
  std::array<Exemplar, 65> exemplars_{};
};

// Full registry snapshot, sorted by instrument name for stable output.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    HistogramSnapshot snapshot;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry (never destroyed, so references handed out
  // stay valid through static teardown).
  static MetricsRegistry& Global();

  // Create-or-get by full name (labels included, e.g.
  // "serve.requests{frontend=3}"). The returned reference is stable for
  // the registry's lifetime; asking twice returns the same instrument.
  // A name must keep one instrument kind for the process lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // One instrument per line: `name value` for counters/gauges,
  // `name count=… sum=… min=… max=… p50=… p95=… p99=…` for histograms.
  std::string DumpText() const;
  // {"counters":[{"name":…,"value":…},…],"gauges":[…],"histograms":[…]}
  // with histogram buckets as [{"le":…,"count":…},…] (empty buckets
  // omitted). Schema is round-trip tested in tests/obs_test.cpp.
  std::string DumpJson() const;

  std::size_t InstrumentCount() const;

 private:
  mutable std::mutex mu_;  // guards the maps; instrument updates are lock-free
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// ---- Snapshot-level operations (fleet-wide aggregation) --------------------
//
// The fleet scraper (fleet/metricsview.h) pulls each node's DumpJson over
// SimNet, parses it back into a MetricsSnapshot, strips per-instance
// labels, and merges everything into one fleet view — so exposition,
// parsing, and merging all live here next to the schema they share.

// Same exposition formats as the registry methods, over any snapshot.
std::string DumpText(const MetricsSnapshot& snapshot);
std::string DumpJson(const MetricsSnapshot& snapshot);

// Parses the DumpJson schema back into a snapshot (quantile fields are
// recomputable and ignored; bucket indices are recovered from `le`).
// Returns false on any malformed input, leaving *out unspecified.
bool ParseMetricsJson(std::string_view json, MetricsSnapshot* out);

// Merges `src` into `dst` by instrument name: counters/gauges add,
// histograms add buckets/count/sum and widen min/max; a valid src exemplar
// replaces dst's. Output stays name-sorted.
void MergeSnapshot(MetricsSnapshot* dst, const MetricsSnapshot& src);

// "serve.latency_ns{frontend=3}" -> "serve.latency_ns".
std::string StripInstrumentLabel(std::string_view name);
// Re-keys every instrument by its label-stripped name, merging collisions
// (the per-instance tallies of one fleet node fold into one series).
MetricsSnapshot StripLabels(const MetricsSnapshot& snapshot);

// Process-unique id for labelling per-instance instruments:
// `NextInstanceId("frontend")` -> 1, 2, … per kind-independent sequence.
std::uint64_t NextInstanceId();

}  // namespace rev::obs
