#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace rev::obs {

namespace internal {

std::size_t ThreadSlot() {
  // Distinct threads get distinct slots until the counter wraps the shard
  // count; a collision only costs contention, never correctness.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace internal

std::uint64_t NextInstanceId() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

// ---------------------------------------------------------------- Histogram

std::uint64_t HistogramSnapshot::BucketLowerBound(std::size_t i) {
  if (i == 0) return 0;
  return 1ull << (i - 1);
}

std::uint64_t HistogramSnapshot::BucketUpperBound(std::size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~0ull;
  return (1ull << i) - 1;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (rank < static_cast<double>(cumulative)) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = static_cast<double>(BucketUpperBound(i));
      const double frac = (rank - before) / static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
  }
  return static_cast<double>(max);
}

void Histogram::Record(std::uint64_t value) {
  const auto bucket =
      static_cast<std::size_t>(value == 0 ? 0 : std::bit_width(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // min/max: optimistic load first so the steady state is CAS-free.
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::RecordMany(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  const auto bucket =
      static_cast<std::size_t>(value == 0 ? 0 : std::bit_width(value));
  buckets_[bucket].fetch_add(count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(value * count, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = (snap.count == 0 || min == ~0ull) ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return snap;
}

// ----------------------------------------------------------------- Registry

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments referenced from static destructors and
  // detached threads must outlive everything.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::size_t MetricsRegistry::InstrumentCount() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snap.counters.push_back({name, counter->Value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    snap.gauges.push_back({name, gauge->Value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    snap.histograms.push_back({name, histogram->Snapshot()});
  return snap;
}

namespace {

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof(buf) - 1));
}

// Instrument names contain only [A-Za-z0-9._{}=,-]; escape defensively
// anyway so DumpJson always emits valid JSON.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      AppendF(out, "\\u%04x", c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::DumpText() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& c : snap.counters)
    AppendF(out, "%s %" PRIu64 "\n", c.name.c_str(), c.value);
  for (const auto& g : snap.gauges)
    AppendF(out, "%s %" PRId64 "\n", g.name.c_str(), g.value);
  for (const auto& h : snap.histograms) {
    AppendF(out,
            "%s count=%" PRIu64 " sum=%" PRIu64 " min=%" PRIu64 " max=%" PRIu64
            " p50=%.1f p95=%.1f p99=%.1f\n",
            h.name.c_str(), h.snapshot.count, h.snapshot.sum, h.snapshot.min,
            h.snapshot.max, h.snapshot.Quantile(0.50), h.snapshot.Quantile(0.95),
            h.snapshot.Quantile(0.99));
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out = "{\"counters\":[";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& c = snap.counters[i];
    AppendF(out, "%s{\"name\":\"%s\",\"value\":%" PRIu64 "}",
            i == 0 ? "" : ",", JsonEscape(c.name).c_str(), c.value);
  }
  out += "],\"gauges\":[";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const auto& g = snap.gauges[i];
    AppendF(out, "%s{\"name\":\"%s\",\"value\":%" PRId64 "}",
            i == 0 ? "" : ",", JsonEscape(g.name).c_str(), g.value);
  }
  out += "],\"histograms\":[";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    const HistogramSnapshot& s = h.snapshot;
    AppendF(out,
            "%s{\"name\":\"%s\",\"count\":%" PRIu64 ",\"sum\":%" PRIu64
            ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
            ",\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,\"buckets\":[",
            i == 0 ? "" : ",", JsonEscape(h.name).c_str(), s.count, s.sum,
            s.min, s.max, s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99));
    bool first = true;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      if (s.buckets[b] == 0) continue;
      AppendF(out, "%s{\"le\":%" PRIu64 ",\"count\":%" PRIu64 "}",
              first ? "" : ",", HistogramSnapshot::BucketUpperBound(b),
              s.buckets[b]);
      first = false;
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace rev::obs
