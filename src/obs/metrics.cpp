#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace rev::obs {

namespace internal {

std::size_t ThreadSlot() {
  // Distinct threads get distinct slots until the counter wraps the shard
  // count; a collision only costs contention, never correctness.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace internal

std::uint64_t NextInstanceId() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

// ----------------------------------------------------------------- Exemplar

namespace {

void AppendHex64(std::string& out, std::uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    const std::uint64_t nibble = (v >> shift) & 0xF;
    out.push_back(
        static_cast<char>(nibble < 10 ? '0' + nibble : 'a' + (nibble - 10)));
  }
}

}  // namespace

std::string Exemplar::Hex() const {
  std::string out;
  out.reserve(32);
  AppendHex64(out, trace_hi);
  AppendHex64(out, trace_lo);
  return out;
}

// ---------------------------------------------------------------- Histogram

std::uint64_t HistogramSnapshot::BucketLowerBound(std::size_t i) {
  if (i == 0) return 0;
  return 1ull << (i - 1);
}

std::uint64_t HistogramSnapshot::BucketUpperBound(std::size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~0ull;
  return (1ull << i) - 1;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (rank < static_cast<double>(cumulative)) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = static_cast<double>(BucketUpperBound(i));
      const double frac = (rank - before) / static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
  }
  return static_cast<double>(max);
}

void Histogram::Record(std::uint64_t value) {
  const auto bucket =
      static_cast<std::size_t>(value == 0 ? 0 : std::bit_width(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // min/max: optimistic load first so the steady state is CAS-free.
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::RecordMany(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  const auto bucket =
      static_cast<std::size_t>(value == 0 ? 0 : std::bit_width(value));
  buckets_[bucket].fetch_add(count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(value * count, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::RecordWithExemplar(std::uint64_t value, const Exemplar& trace) {
  Record(value);
  if (!trace.valid()) return;
  const auto bucket =
      static_cast<std::size_t>(value == 0 ? 0 : std::bit_width(value));
  std::lock_guard lock(ex_mu_);
  exemplars_[bucket] = trace;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = (snap.count == 0 || min == ~0ull) ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  {
    std::lock_guard lock(ex_mu_);
    snap.exemplars = exemplars_;
  }
  return snap;
}

// ----------------------------------------------------------------- Registry

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments referenced from static destructors and
  // detached threads must outlive everything.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::size_t MetricsRegistry::InstrumentCount() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snap.counters.push_back({name, counter->Value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    snap.gauges.push_back({name, gauge->Value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    snap.histograms.push_back({name, histogram->Snapshot()});
  return snap;
}

namespace {

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof(buf) - 1));
}

// Instrument names contain only [A-Za-z0-9._{}=,-]; escape defensively
// anyway so DumpJson always emits valid JSON.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      AppendF(out, "\\u%04x", c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

namespace {

// Text exposition is line-oriented; a name containing a newline (hostile
// label value) must not be able to forge extra lines.
std::string TextSanitize(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    out.push_back((c == '\n' || c == '\r') ? ' ' : c);
  return out;
}

}  // namespace

std::string DumpText(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters)
    AppendF(out, "%s %" PRIu64 "\n", TextSanitize(c.name).c_str(), c.value);
  for (const auto& g : snap.gauges)
    AppendF(out, "%s %" PRId64 "\n", TextSanitize(g.name).c_str(), g.value);
  for (const auto& h : snap.histograms) {
    AppendF(out,
            "%s count=%" PRIu64 " sum=%" PRIu64 " min=%" PRIu64 " max=%" PRIu64
            " p50=%.1f p95=%.1f p99=%.1f\n",
            TextSanitize(h.name).c_str(), h.snapshot.count, h.snapshot.sum,
            h.snapshot.min, h.snapshot.max, h.snapshot.Quantile(0.50),
            h.snapshot.Quantile(0.95), h.snapshot.Quantile(0.99));
  }
  return out;
}

std::string DumpJson(const MetricsSnapshot& snap) {
  std::string out = "{\"counters\":[";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& c = snap.counters[i];
    AppendF(out, "%s{\"name\":\"%s\",\"value\":%" PRIu64 "}",
            i == 0 ? "" : ",", JsonEscape(c.name).c_str(), c.value);
  }
  out += "],\"gauges\":[";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const auto& g = snap.gauges[i];
    AppendF(out, "%s{\"name\":\"%s\",\"value\":%" PRId64 "}",
            i == 0 ? "" : ",", JsonEscape(g.name).c_str(), g.value);
  }
  out += "],\"histograms\":[";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    const HistogramSnapshot& s = h.snapshot;
    AppendF(out,
            "%s{\"name\":\"%s\",\"count\":%" PRIu64 ",\"sum\":%" PRIu64
            ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
            ",\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,\"buckets\":[",
            i == 0 ? "" : ",", JsonEscape(h.name).c_str(), s.count, s.sum,
            s.min, s.max, s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99));
    bool first = true;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      if (s.buckets[b] == 0) continue;
      AppendF(out, "%s{\"le\":%" PRIu64 ",\"count\":%" PRIu64,
              first ? "" : ",", HistogramSnapshot::BucketUpperBound(b),
              s.buckets[b]);
      if (s.exemplars[b].valid())
        AppendF(out, ",\"exemplar\":\"%s\"", s.exemplars[b].Hex().c_str());
      out += "}";
      first = false;
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::DumpText() const { return obs::DumpText(Snapshot()); }

std::string MetricsRegistry::DumpJson() const { return obs::DumpJson(Snapshot()); }

// ------------------------------------------------- Parse / merge / strip

namespace {

// Minimal cursor over the DumpJson schema — not a general JSON parser,
// but tolerant of whitespace and of extra scalar fields (the quantiles,
// future additions) so the format can evolve without breaking scrapers.
struct JsonCursor {
  std::string_view s;
  std::size_t i = 0;

  void SkipWs() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  bool Consume(char c) {
    SkipWs();
    if (i >= s.size() || s[i] != c) return false;
    ++i;
    return true;
  }
  bool Peek(char c) {
    SkipWs();
    return i < s.size() && s[i] == c;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\' && i < s.size()) {
        const char esc = s[i++];
        if (esc == 'u') {
          // Only \u00XX is ever emitted (control chars); decode the byte.
          if (i + 4 > s.size()) return false;
          unsigned v = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[i++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          c = static_cast<char>(v);
        } else {
          c = esc;
        }
      }
      out->push_back(c);
    }
    return Consume('"');
  }
  // Accepts any JSON number; fills the unsigned value when the token is a
  // plain non-negative integer (all the fields we keep are).
  bool ParseNumber(std::uint64_t* out_u64, std::int64_t* out_i64) {
    SkipWs();
    const std::size_t start = i;
    bool negative = false;
    if (i < s.size() && s[i] == '-') {
      negative = true;
      ++i;
    }
    std::uint64_t v = 0;
    bool integral = i < s.size();
    while (i < s.size() && ((s[i] >= '0' && s[i] <= '9') || s[i] == '.' ||
                            s[i] == 'e' || s[i] == 'E' || s[i] == '+' ||
                            s[i] == '-')) {
      if (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
      } else {
        integral = false;
      }
      ++i;
    }
    if (i == start) return false;
    if (out_u64 != nullptr) *out_u64 = (integral && !negative) ? v : 0;
    if (out_i64 != nullptr && integral) {
      *out_i64 = negative ? -static_cast<std::int64_t>(v)
                          : static_cast<std::int64_t>(v);
    }
    return true;
  }
  bool SkipValue() {
    SkipWs();
    if (Peek('"')) {
      std::string ignored;
      return ParseString(&ignored);
    }
    return ParseNumber(nullptr, nullptr);
  }
};

bool ParseExemplarHex(std::string_view hex, Exemplar* out) {
  if (hex.size() != 32) return false;
  std::uint64_t parts[2] = {0, 0};
  for (int half = 0; half < 2; ++half) {
    for (int k = 0; k < 16; ++k) {
      const char c = hex[static_cast<std::size_t>(half * 16 + k)];
      parts[half] <<= 4;
      if (c >= '0' && c <= '9') parts[half] |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') parts[half] |= static_cast<std::uint64_t>(c - 'a' + 10);
      else return false;
    }
  }
  out->trace_hi = parts[0];
  out->trace_lo = parts[1];
  return true;
}

bool ParseBuckets(JsonCursor& cur, HistogramSnapshot* snap) {
  if (!cur.Consume('[')) return false;
  if (cur.Consume(']')) return true;
  do {
    if (!cur.Consume('{')) return false;
    std::uint64_t le = 0, count = 0;
    Exemplar exemplar;
    do {
      std::string key;
      if (!cur.ParseString(&key) || !cur.Consume(':')) return false;
      if (key == "le") {
        if (!cur.ParseNumber(&le, nullptr)) return false;
      } else if (key == "count") {
        if (!cur.ParseNumber(&count, nullptr)) return false;
      } else if (key == "exemplar") {
        std::string hex;
        if (!cur.ParseString(&hex)) return false;
        if (!ParseExemplarHex(hex, &exemplar)) return false;
      } else {
        if (!cur.SkipValue()) return false;
      }
    } while (cur.Consume(','));
    if (!cur.Consume('}')) return false;
    // Bucket index from the upper bound: le = 2^i - 1, so bit_width(le)
    // recovers i (le == ~0 covers every index >= 64).
    const std::size_t index =
        le == 0 ? 0
                : std::min<std::size_t>(
                      64, static_cast<std::size_t>(std::bit_width(le)));
    snap->buckets[index] += count;
    if (exemplar.valid()) snap->exemplars[index] = exemplar;
  } while (cur.Consume(','));
  return cur.Consume(']');
}

}  // namespace

bool ParseMetricsJson(std::string_view json, MetricsSnapshot* out) {
  *out = MetricsSnapshot{};
  JsonCursor cur{json};
  if (!cur.Consume('{')) return false;
  do {
    std::string section;
    if (!cur.ParseString(&section) || !cur.Consume(':') || !cur.Consume('['))
      return false;
    if (cur.Consume(']')) continue;
    do {
      if (!cur.Consume('{')) return false;
      std::string name;
      std::uint64_t value = 0;
      std::int64_t ivalue = 0;
      HistogramSnapshot hist;
      do {
        std::string key;
        if (!cur.ParseString(&key) || !cur.Consume(':')) return false;
        if (key == "name") {
          if (!cur.ParseString(&name)) return false;
        } else if (key == "value") {
          if (!cur.ParseNumber(&value, &ivalue)) return false;
        } else if (key == "count") {
          if (!cur.ParseNumber(&hist.count, nullptr)) return false;
        } else if (key == "sum") {
          if (!cur.ParseNumber(&hist.sum, nullptr)) return false;
        } else if (key == "min") {
          if (!cur.ParseNumber(&hist.min, nullptr)) return false;
        } else if (key == "max") {
          if (!cur.ParseNumber(&hist.max, nullptr)) return false;
        } else if (key == "buckets") {
          if (!ParseBuckets(cur, &hist)) return false;
        } else {
          if (!cur.SkipValue()) return false;  // p50/p95/p99, future fields
        }
      } while (cur.Consume(','));
      if (!cur.Consume('}')) return false;
      if (section == "counters") {
        out->counters.push_back({std::move(name), value});
      } else if (section == "gauges") {
        out->gauges.push_back({std::move(name), ivalue});
      } else if (section == "histograms") {
        out->histograms.push_back({std::move(name), hist});
      }
    } while (cur.Consume(','));
    if (!cur.Consume(']')) return false;
  } while (cur.Consume(','));
  return cur.Consume('}');
}

namespace {

void MergeHistogram(HistogramSnapshot* dst, const HistogramSnapshot& src) {
  if (src.count == 0) return;
  if (dst->count == 0) {
    dst->min = src.min;
    dst->max = src.max;
  } else {
    dst->min = std::min(dst->min, src.min);
    dst->max = std::max(dst->max, src.max);
  }
  dst->count += src.count;
  dst->sum += src.sum;
  for (std::size_t i = 0; i < dst->buckets.size(); ++i) {
    dst->buckets[i] += src.buckets[i];
    if (src.exemplars[i].valid()) dst->exemplars[i] = src.exemplars[i];
  }
}

}  // namespace

void MergeSnapshot(MetricsSnapshot* dst, const MetricsSnapshot& src) {
  const auto merge = [](auto& dst_vec, const auto& src_vec, auto&& combine) {
    for (const auto& entry : src_vec) {
      auto it = std::lower_bound(
          dst_vec.begin(), dst_vec.end(), entry.name,
          [](const auto& a, const std::string& name) { return a.name < name; });
      if (it != dst_vec.end() && it->name == entry.name) {
        combine(*it, entry);
      } else {
        dst_vec.insert(it, entry);
      }
    }
  };
  // DumpJson emits name-sorted sections, but a hand-built dst may not be:
  // normalize first so lower_bound is valid.
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(dst->counters.begin(), dst->counters.end(), by_name);
  std::sort(dst->gauges.begin(), dst->gauges.end(), by_name);
  std::sort(dst->histograms.begin(), dst->histograms.end(), by_name);
  merge(dst->counters, src.counters,
        [](auto& d, const auto& s) { d.value += s.value; });
  merge(dst->gauges, src.gauges,
        [](auto& d, const auto& s) { d.value += s.value; });
  merge(dst->histograms, src.histograms,
        [](auto& d, const auto& s) { MergeHistogram(&d.snapshot, s.snapshot); });
}

std::string StripInstrumentLabel(std::string_view name) {
  const std::size_t open = name.find('{');
  if (open == std::string_view::npos) return std::string(name);
  const std::size_t close = name.find('}', open);
  if (close == std::string_view::npos) return std::string(name);
  std::string out(name.substr(0, open));
  out.append(name.substr(close + 1));
  return out;
}

MetricsSnapshot StripLabels(const MetricsSnapshot& snapshot) {
  MetricsSnapshot renamed;
  renamed.counters = snapshot.counters;
  renamed.gauges = snapshot.gauges;
  renamed.histograms = snapshot.histograms;
  for (auto& c : renamed.counters) c.name = StripInstrumentLabel(c.name);
  for (auto& g : renamed.gauges) g.name = StripInstrumentLabel(g.name);
  for (auto& h : renamed.histograms) h.name = StripInstrumentLabel(h.name);
  MetricsSnapshot out;
  MergeSnapshot(&out, renamed);
  return out;
}

}  // namespace rev::obs
