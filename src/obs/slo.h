// Declarative service-level objectives over rolling virtual-time windows,
// with multi-window burn-rate alerting.
//
// An objective is a good/total ratio target ("availability >= 99.9%",
// "p99 latency <= 250ms" expressed as "share of requests under 250ms >=
// 99%", "staleness <= 300s" likewise). Callers Record() per-window tallies
// of good and total events on the *virtual* clock; tallies are plain
// integers, so a deterministic workload produces a byte-identical alert
// timeline at any thread count — the fleet bench gates on exactly that.
//
// Alerting follows the multi-window burn-rate discipline: the burn rate of
// a window range is (error rate) / (error budget), i.e. how many times
// faster than "exactly meets the objective" the budget is being spent. An
// alert fires for window W when BOTH the short range (the last
// `short_windows` windows ending at W) and the long range (the last
// `long_windows`) burn faster than `burn_threshold`. The short range makes
// alerts recover quickly when the storm ends; the long range keeps a
// single bad window from paging. Evaluation is retrospective and pure — a
// function of the recorded tallies only — so the timeline can be
// recomputed, diffed, and byte-compared. See docs/observability.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace rev::obs {

struct SloObjective {
  std::string name;          // "availability", "latency_p99", ...
  double objective = 0.999;  // required good/total ratio
  // Width of one evaluation window on the virtual clock.
  std::int64_t window_seconds = 60;
  int short_windows = 1;     // burn measured over the last k windows...
  int long_windows = 3;      // ...and confirmed over the last m (m >= k)
  double burn_threshold = 4.0;
};

class SloMonitor {
 public:
  // Objectives are evaluated (and serialized) in registration order.
  void AddObjective(SloObjective objective);

  // Adds `good` good events out of `total` to the window containing
  // virtual time `t` for objective `name`. Unknown names are ignored.
  // Not thread-safe: callers record from their deterministic merge step.
  void Record(std::string_view name, util::Timestamp t, std::uint64_t good,
              std::uint64_t total);

  struct Alert {
    std::string objective;
    util::Timestamp window_start = 0;  // virtual seconds
    util::Timestamp window_end = 0;
    double short_burn = 0;
    double long_burn = 0;
  };

  // Every window (in virtual-time order, objectives in registration order
  // within one window) whose short AND long burn rates exceed the
  // objective's threshold. Windows with no traffic in the short range
  // never fire.
  std::vector<Alert> AlertTimeline() const;

  // Stable serialization of objectives + timeline, for BENCH json blocks
  // and byte-identity comparisons:
  // {"objectives":[{"name":…,"objective":…,"window_s":…,…},…],
  //  "alert_timeline":[{"objective":…,"from_s":…,"to_s":…,
  //                     "short_burn":…,"long_burn":…},…]}
  std::string TimelineJson() const;

  const std::vector<SloObjective>& objectives() const;

 private:
  struct Tally {
    std::uint64_t good = 0;
    std::uint64_t total = 0;
  };
  struct State {
    SloObjective objective;
    // window index (floor(t / window_seconds)) -> tally. Ordered so the
    // timeline comes out in virtual-time order.
    std::vector<std::pair<std::int64_t, Tally>> windows;  // sorted by index
    Tally& WindowAt(std::int64_t index);
  };
  std::vector<State> states_;
  std::vector<SloObjective> objectives_;
};

}  // namespace rev::obs
