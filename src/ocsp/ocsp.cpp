#include "ocsp/ocsp.h"
#include <sstream>

#include "asn1/reader.h"
#include "asn1/writer.h"
#include "crypto/sha256.h"
#include "util/hex.h"
#include "x509/spki.h"

namespace rev::ocsp {

const char* CertStatusName(CertStatus s) {
  switch (s) {
    case CertStatus::kGood: return "good";
    case CertStatus::kRevoked: return "revoked";
    case CertStatus::kUnknown: return "unknown";
  }
  return "?";
}

CertId MakeCertId(const x509::Certificate& issuer,
                  const x509::Serial& subject_serial) {
  CertId id;
  id.issuer_name_hash = crypto::Sha256Bytes(issuer.tbs.subject.Encode());
  id.issuer_key_hash = issuer.SubjectSpkiSha256();
  id.serial = subject_serial;
  return id;
}

namespace {

Bytes Sha256AlgorithmId() {
  return asn1::EncodeSequence(
      {asn1::EncodeOid(asn1::oids::Sha256()), asn1::EncodeNull()});
}

Bytes EncodeCertId(const CertId& id) {
  return asn1::EncodeSequence({Sha256AlgorithmId(),
                               asn1::EncodeOctetString(id.issuer_name_hash),
                               asn1::EncodeOctetString(id.issuer_key_hash),
                               asn1::EncodeIntegerUnsigned(id.serial)});
}

std::optional<CertId> DecodeCertId(asn1::Reader& r) {
  asn1::Reader seq;
  if (!r.ReadSequence(&seq)) return std::nullopt;
  asn1::Reader alg;
  if (!seq.ReadSequence(&alg)) return std::nullopt;  // hash algorithm, assumed SHA-256
  CertId id;
  BytesView name_hash, key_hash;
  if (!seq.ReadOctetString(&name_hash) || !seq.ReadOctetString(&key_hash) ||
      !seq.ReadIntegerUnsigned(&id.serial))
    return std::nullopt;
  id.issuer_name_hash.assign(name_hash.begin(), name_hash.end());
  id.issuer_key_hash.assign(key_hash.begin(), key_hash.end());
  return id;
}

}  // namespace

Bytes EncodeOcspRequest(const OcspRequest& request) {
  // requestList ::= SEQUENCE OF Request; Request ::= SEQUENCE { reqCert CertID }
  std::vector<Bytes> requests;
  requests.reserve(request.cert_ids.size());
  for (const CertId& id : request.cert_ids)
    requests.push_back(asn1::EncodeSequence({EncodeCertId(id)}));
  std::vector<Bytes> tbs_parts;
  tbs_parts.push_back(asn1::EncodeSequence(requests));  // requestList
  if (!request.nonce.empty()) {
    const x509::Extension nonce_ext{asn1::oids::OcspNonce(), false,
                                    asn1::EncodeOctetString(request.nonce)};
    tbs_parts.push_back(asn1::EncodeContextExplicit(
        2, x509::EncodeExtensionList({nonce_ext})));
  }
  const Bytes tbs = asn1::EncodeSequence(tbs_parts);
  return asn1::EncodeSequence({tbs});
}

std::optional<OcspRequest> ParseOcspRequest(BytesView der) {
  asn1::Reader top(der);
  asn1::Reader outer;
  if (!top.ReadSequence(&outer) || !top.Empty()) return std::nullopt;
  asn1::Reader tbs;
  if (!outer.ReadSequence(&tbs)) return std::nullopt;
  asn1::Reader request_list;
  if (!tbs.ReadSequence(&request_list)) return std::nullopt;

  OcspRequest out;
  while (!request_list.Empty()) {
    asn1::Reader req;
    if (!request_list.ReadSequence(&req)) return std::nullopt;
    auto id = DecodeCertId(req);
    if (!id) return std::nullopt;
    out.cert_ids.push_back(*std::move(id));
  }
  if (out.cert_ids.empty()) return std::nullopt;

  if (tbs.NextIsContext(2)) {
    asn1::Reader ext_wrapper;
    if (!tbs.ReadContextExplicit(2, &ext_wrapper)) return std::nullopt;
    auto exts = x509::DecodeExtensionList(ext_wrapper);
    if (!exts) return std::nullopt;
    for (const x509::Extension& ext : *exts) {
      if (ext.oid == asn1::oids::OcspNonce()) {
        asn1::Reader nonce_reader(ext.value);
        BytesView nonce;
        if (!nonce_reader.ReadOctetString(&nonce)) return std::nullopt;
        out.nonce.assign(nonce.begin(), nonce.end());
      }
    }
  }
  return out;
}

bool ParseSingleCertRequestView(BytesView der, OcspRequestView* out) {
  asn1::Reader top(der);
  asn1::Reader outer;
  if (!top.ReadSequence(&outer) || !top.Empty()) return false;
  asn1::Reader tbs;
  if (!outer.ReadSequence(&tbs)) return false;
  asn1::Reader request_list;
  if (!tbs.ReadSequence(&request_list)) return false;
  asn1::Reader req;
  if (!request_list.ReadSequence(&req) || !request_list.Empty()) return false;
  asn1::Reader id;
  if (!req.ReadSequence(&id) || !req.Empty()) return false;
  asn1::Reader alg;  // hash algorithm, assumed SHA-256 (as ParseOcspRequest)
  if (!id.ReadSequence(&alg)) return false;
  if (!id.ReadOctetString(&out->issuer_name_hash) ||
      !id.ReadOctetString(&out->issuer_key_hash) ||
      !id.ReadIntegerUnsignedView(&out->serial) || !id.Empty())
    return false;
  // Anything after requestList (requestExtensions — i.e. a nonce) takes the
  // allocating path, which knows how to handle it.
  return tbs.Empty();
}

std::string OcspGetPath(const OcspRequest& request) {
  return "/" + util::Base64Encode(EncodeOcspRequest(request));
}

std::optional<OcspRequest> ParseOcspGetPath(std::string_view path) {
  if (path.empty() || path.front() != '/') return std::nullopt;
  auto der = util::Base64Decode(path.substr(1));
  if (!der) return std::nullopt;
  return ParseOcspRequest(*der);
}

namespace {

Bytes EncodeSingleResponse(const SingleResponse& single) {
  std::vector<Bytes> parts;
  parts.push_back(EncodeCertId(single.cert_id));
  switch (single.status) {
    case CertStatus::kGood:
      parts.push_back(asn1::EncodeContextPrimitive(0, {}));
      break;
    case CertStatus::kRevoked: {
      std::vector<Bytes> revoked_info;
      revoked_info.push_back(asn1::EncodeGeneralizedTime(single.revocation_time));
      if (single.reason != x509::ReasonCode::kNoReasonCode) {
        revoked_info.push_back(asn1::EncodeContextExplicit(
            0, asn1::EncodeEnumerated(static_cast<std::int64_t>(single.reason))));
      }
      parts.push_back(
          asn1::EncodeContextConstructed(1, asn1::Concat(revoked_info)));
      break;
    }
    case CertStatus::kUnknown:
      parts.push_back(asn1::EncodeContextPrimitive(2, {}));
      break;
  }
  parts.push_back(asn1::EncodeGeneralizedTime(single.this_update));
  if (single.next_update != 0) {
    parts.push_back(asn1::EncodeContextExplicit(
        0, asn1::EncodeGeneralizedTime(single.next_update)));
  }
  return asn1::EncodeSequence(parts);
}

std::optional<SingleResponse> DecodeSingleResponse(asn1::Reader& r) {
  asn1::Reader seq;
  if (!r.ReadSequence(&seq)) return std::nullopt;
  SingleResponse single;
  auto id = DecodeCertId(seq);
  if (!id) return std::nullopt;
  single.cert_id = *std::move(id);

  if (seq.NextIsContext(0)) {
    BytesView empty;
    if (!seq.ReadContextPrimitive(0, &empty)) return std::nullopt;
    single.status = CertStatus::kGood;
  } else if (seq.NextIsContext(1)) {
    asn1::Reader revoked_info;
    if (!seq.ReadContextConstructed(1, &revoked_info)) return std::nullopt;
    single.status = CertStatus::kRevoked;
    if (!revoked_info.ReadTime(&single.revocation_time)) return std::nullopt;
    if (revoked_info.NextIsContext(0)) {
      asn1::Reader reason_reader;
      if (!revoked_info.ReadContextExplicit(0, &reason_reader))
        return std::nullopt;
      std::int64_t reason;
      if (!reason_reader.ReadEnumerated(&reason)) return std::nullopt;
      single.reason = static_cast<x509::ReasonCode>(reason);
    }
  } else if (seq.NextIsContext(2)) {
    BytesView empty;
    if (!seq.ReadContextPrimitive(2, &empty)) return std::nullopt;
    single.status = CertStatus::kUnknown;
  } else {
    return std::nullopt;
  }

  if (!seq.ReadTime(&single.this_update)) return std::nullopt;
  if (seq.NextIsContext(0)) {
    asn1::Reader next_update;
    if (!seq.ReadContextExplicit(0, &next_update) ||
        !next_update.ReadTime(&single.next_update))
      return std::nullopt;
  }
  return single;
}

}  // namespace

OcspResponse SignOcspResponse(const SingleResponse& single,
                              util::Timestamp produced_at,
                              const crypto::KeyPair& responder_key) {
  return SignOcspResponse(std::vector<SingleResponse>{single}, produced_at,
                          responder_key, {});
}

OcspResponse SignOcspResponse(const std::vector<SingleResponse>& singles,
                              util::Timestamp produced_at,
                              const crypto::KeyPair& responder_key,
                              BytesView nonce) {
  OcspResponse response;
  if (singles.empty()) return MakeErrorResponse(ResponseStatus::kInternalError);
  response.status = ResponseStatus::kSuccessful;
  response.single = singles.front();
  response.singles = singles;
  response.nonce.assign(nonce.begin(), nonce.end());
  response.produced_at = produced_at;
  response.sig_type = responder_key.type;

  // ResponseData ::= SEQUENCE { responderID [2] byKey, producedAt,
  //                             responses SEQUENCE OF SingleResponse,
  //                             responseExtensions [1] EXPLICIT OPTIONAL }
  const Bytes responder_id = asn1::EncodeContextConstructed(
      2, asn1::EncodeOctetString(singles.front().cert_id.issuer_key_hash));
  std::vector<Bytes> encoded_singles;
  encoded_singles.reserve(singles.size());
  for (const SingleResponse& single : singles)
    encoded_singles.push_back(EncodeSingleResponse(single));
  std::vector<Bytes> data_parts{responder_id,
                                asn1::EncodeGeneralizedTime(produced_at),
                                asn1::EncodeSequence(encoded_singles)};
  if (!nonce.empty()) {
    const x509::Extension nonce_ext{asn1::oids::OcspNonce(), false,
                                    asn1::EncodeOctetString(response.nonce)};
    data_parts.push_back(asn1::EncodeContextExplicit(
        1, x509::EncodeExtensionList({nonce_ext})));
  }
  response.tbs_der = asn1::EncodeSequence(data_parts);
  response.signature = crypto::Sign(responder_key, response.tbs_der);

  const Bytes basic = asn1::EncodeSequence(
      {response.tbs_der, x509::EncodeSignatureAlgorithm(responder_key.type),
       asn1::EncodeBitString(response.signature)});
  const Bytes response_bytes = asn1::EncodeSequence(
      {asn1::EncodeOid(asn1::oids::OcspBasic()),
       asn1::EncodeOctetString(basic)});
  response.der = asn1::EncodeSequence(
      {asn1::EncodeEnumerated(0),
       asn1::EncodeContextExplicit(0, response_bytes)});
  return response;
}

OcspResponse MakeErrorResponse(ResponseStatus status) {
  OcspResponse response;
  response.status = status;
  response.der = asn1::EncodeSequence(
      {asn1::EncodeEnumerated(static_cast<std::int64_t>(status))});
  return response;
}

std::optional<OcspResponse> ParseOcspResponse(BytesView der) {
  asn1::Reader top(der);
  asn1::Reader outer;
  if (!top.ReadSequence(&outer) || !top.Empty()) return std::nullopt;

  std::int64_t status;
  if (!outer.ReadEnumerated(&status)) return std::nullopt;

  OcspResponse response;
  response.status = static_cast<ResponseStatus>(status);
  if (response.status != ResponseStatus::kSuccessful) {
    response.der.assign(der.begin(), der.end());
    return response;
  }

  asn1::Reader bytes_wrapper;
  if (!outer.ReadContextExplicit(0, &bytes_wrapper)) return std::nullopt;
  asn1::Reader response_bytes;
  if (!bytes_wrapper.ReadSequence(&response_bytes)) return std::nullopt;
  asn1::Oid response_type;
  if (!response_bytes.ReadOid(&response_type) ||
      response_type != asn1::oids::OcspBasic())
    return std::nullopt;
  BytesView basic_der;
  if (!response_bytes.ReadOctetString(&basic_der)) return std::nullopt;

  asn1::Reader basic_top(basic_der);
  asn1::Reader basic;
  if (!basic_top.ReadSequence(&basic)) return std::nullopt;

  BytesView tbs_raw;
  {
    asn1::Reader probe = basic;
    if (!probe.ReadRawTlv(&tbs_raw)) return std::nullopt;
    basic = probe;
  }
  response.tbs_der.assign(tbs_raw.begin(), tbs_raw.end());

  asn1::Reader tbs(tbs_raw);
  asn1::Reader response_data;
  if (!tbs.ReadSequence(&response_data)) return std::nullopt;

  asn1::Reader responder_id;
  if (!response_data.ReadContextConstructed(2, &responder_id))
    return std::nullopt;
  if (!response_data.ReadTime(&response.produced_at)) return std::nullopt;

  asn1::Reader responses;
  if (!response_data.ReadSequence(&responses)) return std::nullopt;
  while (!responses.Empty()) {
    auto single = DecodeSingleResponse(responses);
    if (!single) return std::nullopt;
    response.singles.push_back(*std::move(single));
  }
  if (response.singles.empty()) return std::nullopt;
  response.single = response.singles.front();

  if (response_data.NextIsContext(1)) {
    asn1::Reader ext_wrapper;
    if (!response_data.ReadContextExplicit(1, &ext_wrapper)) return std::nullopt;
    auto exts = x509::DecodeExtensionList(ext_wrapper);
    if (!exts) return std::nullopt;
    for (const x509::Extension& ext : *exts) {
      if (ext.oid == asn1::oids::OcspNonce()) {
        asn1::Reader nonce_reader(ext.value);
        BytesView nonce;
        if (!nonce_reader.ReadOctetString(&nonce)) return std::nullopt;
        response.nonce.assign(nonce.begin(), nonce.end());
      }
    }
  }

  auto sig_type = x509::DecodeSignatureAlgorithm(basic);
  if (!sig_type) return std::nullopt;
  response.sig_type = *sig_type;

  BytesView sig_bits;
  unsigned unused = 0;
  if (!basic.ReadBitString(&sig_bits, &unused) || unused != 0)
    return std::nullopt;
  response.signature.assign(sig_bits.begin(), sig_bits.end());

  response.der.assign(der.begin(), der.end());
  return response;
}

bool VerifyOcspSignature(const OcspResponse& response,
                         const crypto::PublicKey& responder_key) {
  if (response.status != ResponseStatus::kSuccessful) return false;
  if (responder_key.type != response.sig_type) return false;
  return crypto::Verify(responder_key, response.tbs_der, response.signature);
}

std::string DescribeOcspResponse(const OcspResponse& response) {
  std::ostringstream out;
  out << "OCSP response:\n";
  if (response.status != ResponseStatus::kSuccessful) {
    out << "  status      : error (" << static_cast<int>(response.status)
        << ")\n";
    return out.str();
  }
  out << "  produced at : " << util::FormatDateTime(response.produced_at)
      << "\n";
  if (response.singles.size() > 1)
    out << "  responses   : " << response.singles.size() << "\n";
  out << "  serial      : "
      << x509::SerialToString(response.single.cert_id.serial) << "\n";
  out << "  cert status : " << CertStatusName(response.single.status) << "\n";
  if (response.single.status == CertStatus::kRevoked) {
    out << "  revoked at  : "
        << util::FormatDateTime(response.single.revocation_time) << "\n";
    out << "  reason      : " << x509::ReasonCodeName(response.single.reason)
        << "\n";
  }
  out << "  this update : "
      << util::FormatDateTime(response.single.this_update) << "\n";
  if (response.single.next_update != 0)
    out << "  next update : "
        << util::FormatDateTime(response.single.next_update) << "\n";
  return out.str();
}

}  // namespace rev::ocsp
