// An OCSP responder engine: a CA-side status database plus request handling.
//
// One Responder instance serves one issuing CA certificate (matching how a
// CA operates a responder per issuer key). The CA module wires Responder
// instances to simulated HTTP endpoints — since PR 2 through the
// `serve::Frontend` fast path, which mirrors this database into a sharded
// read-mostly index (see docs/serving.md). The Responder stays the single
// writer: every mutation is forwarded to an optional observer so the
// serving layer can invalidate precomputed responses.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "crypto/signer.h"
#include "ocsp/ocsp.h"
#include "util/bytes.h"
#include "util/time.h"
#include "x509/certificate.h"

namespace rev::ocsp {

class Responder {
 public:
  // One status record, as stored and as exported to the serving layer.
  struct RecordView {
    CertStatus status = CertStatus::kGood;
    util::Timestamp revocation_time = 0;
    x509::ReasonCode reason = x509::ReasonCode::kNoReasonCode;

    // Replication compares records field-for-field to diff a pushed
    // snapshot against the local index (src/fleet).
    friend bool operator==(const RecordView&, const RecordView&) = default;
  };

  // Mutation callback: fired after AddCertificate/Revoke/Remove with the new
  // record (nullopt = removed). Runs on the mutating thread.
  using MutationObserver =
      std::function<void(const x509::Serial&, const std::optional<RecordView>&)>;

  // `issuer` is the CA certificate whose issued certs this responder covers;
  // `key` signs responses (the CA key itself in this library). `validity`
  // controls SingleResponse nextUpdate; the paper notes OCSP responses are
  // typically cacheable on the order of days (§2.2).
  Responder(const x509::Certificate& issuer, crypto::KeyPair key,
            std::int64_t validity_seconds = 4 * util::kSecondsPerDay);

  // Registers an issued certificate as good.
  void AddCertificate(const x509::Serial& serial);

  // Marks a certificate revoked.
  void Revoke(const x509::Serial& serial, util::Timestamp when,
              x509::ReasonCode reason);

  // Forgets a certificate: subsequent queries answer `unknown`. Used by the
  // test suite to generate unknown-status responses (§6.1).
  void Remove(const x509::Serial& serial);

  // Handles a DER OCSP request, producing a DER response. A request listing
  // N certificates yields N SingleResponses in request order; a request
  // nonce is echoed in responseExtensions. Serials the responder has never
  // seen yield status `unknown`.
  Bytes Handle(BytesView request_der, util::Timestamp now) const;

  // Produces a response for a specific serial without a request (used for
  // OCSP stapling, where the server fetches its own status).
  OcspResponse StatusFor(const x509::Serial& serial, util::Timestamp now) const;

  // --- building blocks shared with the serving layer ----------------------

  // The raw record for `serial`, nullopt if never seen / removed.
  std::optional<RecordView> Lookup(const x509::Serial& serial) const;

  // All records, in serial order (bulk load for the serving index).
  std::vector<std::pair<x509::Serial, RecordView>> SnapshotRecords() const;

  // Builds the SingleResponse for `serial` given `record` (which may come
  // from this responder's database or from a serving-layer index). Applies
  // the scheduled-revocation rule: a revocation whose time is still in the
  // future reads `good` as of `now`.
  SingleResponse MakeSingle(const x509::Serial& serial,
                            const std::optional<RecordView>& record,
                            util::Timestamp now) const;

  // Signs a response over `singles` (request order), echoing `nonce`.
  OcspResponse Sign(const std::vector<SingleResponse>& singles,
                    util::Timestamp produced_at, BytesView nonce = {}) const;

  // Installs (or clears, with nullptr semantics via default-constructed
  // function) the mutation observer. At most one observer is supported —
  // enough for the serving frontend.
  void SetObserver(MutationObserver observer);

  const Bytes& issuer_name_hash() const { return issuer_name_hash_; }
  const Bytes& issuer_key_hash() const { return issuer_key_hash_; }
  std::int64_t validity_seconds() const { return validity_seconds_; }
  std::size_t record_count() const { return records_.size(); }

 private:
  void Notify(const x509::Serial& serial) const;

  Bytes issuer_name_hash_;
  Bytes issuer_key_hash_;
  crypto::KeyPair key_;
  std::int64_t validity_seconds_;
  std::map<x509::Serial, RecordView> records_;
  MutationObserver observer_;
};

}  // namespace rev::ocsp
