// An OCSP responder engine: a CA-side status database plus request handling.
//
// One Responder instance serves one issuing CA certificate (matching how a
// CA operates a responder per issuer key). The CA module wires Responder
// instances to simulated HTTP endpoints.
#pragma once

#include <map>

#include "crypto/signer.h"
#include "ocsp/ocsp.h"
#include "util/bytes.h"
#include "util/time.h"
#include "x509/certificate.h"

namespace rev::ocsp {

class Responder {
 public:
  // `issuer` is the CA certificate whose issued certs this responder covers;
  // `key` signs responses (the CA key itself in this library). `validity`
  // controls SingleResponse nextUpdate; the paper notes OCSP responses are
  // typically cacheable on the order of days (§2.2).
  Responder(const x509::Certificate& issuer, crypto::KeyPair key,
            std::int64_t validity_seconds = 4 * util::kSecondsPerDay);

  // Registers an issued certificate as good.
  void AddCertificate(const x509::Serial& serial);

  // Marks a certificate revoked.
  void Revoke(const x509::Serial& serial, util::Timestamp when,
              x509::ReasonCode reason);

  // Forgets a certificate: subsequent queries answer `unknown`. Used by the
  // test suite to generate unknown-status responses (§6.1).
  void Remove(const x509::Serial& serial);

  // Handles a DER OCSP request, producing a DER response. Serials the
  // responder has never seen yield status `unknown`.
  Bytes Handle(BytesView request_der, util::Timestamp now) const;

  // Produces a response for a specific serial without a request (used for
  // OCSP stapling, where the server fetches its own status).
  OcspResponse StatusFor(const x509::Serial& serial, util::Timestamp now) const;

  const Bytes& issuer_name_hash() const { return issuer_name_hash_; }
  const Bytes& issuer_key_hash() const { return issuer_key_hash_; }

 private:
  struct StatusRecord {
    CertStatus status = CertStatus::kGood;
    util::Timestamp revocation_time = 0;
    x509::ReasonCode reason = x509::ReasonCode::kNoReasonCode;
  };

  Bytes issuer_name_hash_;
  Bytes issuer_key_hash_;
  crypto::KeyPair key_;
  std::int64_t validity_seconds_;
  std::map<x509::Serial, StatusRecord> records_;
};

}  // namespace rev::ocsp
