// Online Certificate Status Protocol (RFC 6960). Requests carry one or more
// CertIDs (browsers issue single-cert requests, but the RFC allows batching
// and some clients batch a whole chain); responses carry one SingleResponse
// per requested certificate, in request order, and echo the request nonce.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/signer.h"
#include "util/bytes.h"
#include "util/time.h"
#include "x509/certificate.h"
#include "x509/extensions.h"

namespace rev::ocsp {

// Identifies the certificate whose status is requested: SHA-256 hashes of
// the issuer name and issuer public key, plus the serial number.
struct CertId {
  Bytes issuer_name_hash;
  Bytes issuer_key_hash;
  x509::Serial serial;

  friend bool operator==(const CertId&, const CertId&) = default;
};

// Builds the CertID for `subject_serial` issued by `issuer`.
CertId MakeCertId(const x509::Certificate& issuer,
                  const x509::Serial& subject_serial);

struct OcspRequest {
  // requestList, in wire order. The single-cert shape browsers send is
  // `cert_ids = {id}`.
  std::vector<CertId> cert_ids;
  Bytes nonce;  // empty = no nonce extension
};

Bytes EncodeOcspRequest(const OcspRequest& request);
std::optional<OcspRequest> ParseOcspRequest(BytesView der);

// Borrowed parse of the dominant request shape — exactly one CertID, no
// requestor name, no extensions (hence no nonce). Every field aliases the
// input `der`, so the view is valid only while that buffer lives. Returns
// false for anything else — malformed input included — in which case the
// caller falls back to the allocating ParseOcspRequest for classification.
// This is the serving frontend's hot path: it avoids the per-request heap
// allocations (CertId vectors, hash/serial copies) that otherwise dominate
// a cache-hit's cost.
struct OcspRequestView {
  BytesView issuer_name_hash;
  BytesView issuer_key_hash;
  BytesView serial;  // unsigned big-endian magnitude, sign padding stripped
};
bool ParseSingleCertRequestView(BytesView der, OcspRequestView* out);

// RFC 6960 Appendix A: OCSP over HTTP GET — the request DER is base64ed
// into the URL path ("GET {url}/{base64(request)}"). Browsers issue GETs
// far more often than POSTs; the paper had to patch OpenSSL's responder to
// accept them (§6.2).
std::string OcspGetPath(const OcspRequest& request);
std::optional<OcspRequest> ParseOcspGetPath(std::string_view path);

// RFC 6960 OCSPResponseStatus.
enum class ResponseStatus : std::uint8_t {
  kSuccessful = 0,
  kMalformedRequest = 1,
  kInternalError = 2,
  kTryLater = 3,
  kSigRequired = 5,
  kUnauthorized = 6,
};

// CertStatus of a single response. The paper stresses that `unknown` "does
// not indicate that the certificate in question should be trusted" (§2.2),
// yet several browsers treat it as good — the policy engine models both.
enum class CertStatus : std::uint8_t { kGood = 0, kRevoked = 1, kUnknown = 2 };

const char* CertStatusName(CertStatus s);

struct SingleResponse {
  CertId cert_id;
  CertStatus status = CertStatus::kUnknown;
  util::Timestamp revocation_time = 0;                       // iff revoked
  x509::ReasonCode reason = x509::ReasonCode::kNoReasonCode; // iff revoked
  util::Timestamp this_update = 0;
  util::Timestamp next_update = 0;  // 0 = omit
};

struct OcspResponse {
  ResponseStatus status = ResponseStatus::kInternalError;
  // Populated iff status == kSuccessful. `single` is singles.front() — the
  // dominant single-cert shape; multi-cert responses carry the rest in
  // `singles` (request order).
  SingleResponse single;
  std::vector<SingleResponse> singles;
  Bytes nonce;  // echoed request nonce (responseExtensions), empty if none
  util::Timestamp produced_at = 0;
  crypto::KeyType sig_type = crypto::KeyType::kSimSha256;
  Bytes tbs_der;
  Bytes signature;
  Bytes der;
};

// Signs a successful response carrying `single`.
OcspResponse SignOcspResponse(const SingleResponse& single,
                              util::Timestamp produced_at,
                              const crypto::KeyPair& responder_key);

// Signs a successful response carrying `singles` in order (at least one),
// echoing `nonce` in responseExtensions when non-empty (RFC 6960 §4.4.1).
OcspResponse SignOcspResponse(const std::vector<SingleResponse>& singles,
                              util::Timestamp produced_at,
                              const crypto::KeyPair& responder_key,
                              BytesView nonce);

// Builds an unsuccessful (error) response; no signature per RFC 6960.
OcspResponse MakeErrorResponse(ResponseStatus status);

std::optional<OcspResponse> ParseOcspResponse(BytesView der);
bool VerifyOcspSignature(const OcspResponse& response,
                         const crypto::PublicKey& responder_key);

// Human-readable rendering of a response.
std::string DescribeOcspResponse(const OcspResponse& response);

}  // namespace rev::ocsp
