#include "ocsp/responder.h"

#include "crypto/sha256.h"
#include "x509/spki.h"

namespace rev::ocsp {

Responder::Responder(const x509::Certificate& issuer, crypto::KeyPair key,
                     std::int64_t validity_seconds)
    : issuer_name_hash_(crypto::Sha256Bytes(issuer.tbs.subject.Encode())),
      issuer_key_hash_(issuer.SubjectSpkiSha256()),
      key_(std::move(key)),
      validity_seconds_(validity_seconds) {}

void Responder::AddCertificate(const x509::Serial& serial) {
  records_.try_emplace(serial);
}

void Responder::Revoke(const x509::Serial& serial, util::Timestamp when,
                       x509::ReasonCode reason) {
  StatusRecord& record = records_[serial];
  record.status = CertStatus::kRevoked;
  record.revocation_time = when;
  record.reason = reason;
}

void Responder::Remove(const x509::Serial& serial) {
  records_.erase(serial);
}

OcspResponse Responder::StatusFor(const x509::Serial& serial,
                                  util::Timestamp now) const {
  SingleResponse single;
  single.cert_id.issuer_name_hash = issuer_name_hash_;
  single.cert_id.issuer_key_hash = issuer_key_hash_;
  single.cert_id.serial = serial;
  single.this_update = now;
  single.next_update = now + validity_seconds_;

  auto it = records_.find(serial);
  if (it == records_.end()) {
    single.status = CertStatus::kUnknown;
  } else if (it->second.status == CertStatus::kRevoked &&
             it->second.revocation_time > now) {
    // Revocation scheduled but not yet effective (simulation timelines are
    // planned up front): still good as of `now`.
    single.status = CertStatus::kGood;
  } else {
    single.status = it->second.status;
    single.revocation_time = it->second.revocation_time;
    single.reason = it->second.reason;
  }
  return SignOcspResponse(single, now, key_);
}

Bytes Responder::Handle(BytesView request_der, util::Timestamp now) const {
  auto request = ParseOcspRequest(request_der);
  if (!request) return MakeErrorResponse(ResponseStatus::kMalformedRequest).der;
  if (request->cert_id.issuer_name_hash != issuer_name_hash_ ||
      request->cert_id.issuer_key_hash != issuer_key_hash_) {
    return MakeErrorResponse(ResponseStatus::kUnauthorized).der;
  }
  return StatusFor(request->cert_id.serial, now).der;
}

}  // namespace rev::ocsp
