#include "ocsp/responder.h"

#include "crypto/sha256.h"
#include "x509/spki.h"

namespace rev::ocsp {

Responder::Responder(const x509::Certificate& issuer, crypto::KeyPair key,
                     std::int64_t validity_seconds)
    : issuer_name_hash_(crypto::Sha256Bytes(issuer.tbs.subject.Encode())),
      issuer_key_hash_(issuer.SubjectSpkiSha256()),
      key_(std::move(key)),
      validity_seconds_(validity_seconds) {}

void Responder::SetObserver(MutationObserver observer) {
  observer_ = std::move(observer);
}

void Responder::Notify(const x509::Serial& serial) const {
  if (!observer_) return;
  auto it = records_.find(serial);
  observer_(serial, it == records_.end()
                        ? std::nullopt
                        : std::optional<RecordView>(it->second));
}

void Responder::AddCertificate(const x509::Serial& serial) {
  records_.try_emplace(serial);
  Notify(serial);
}

void Responder::Revoke(const x509::Serial& serial, util::Timestamp when,
                       x509::ReasonCode reason) {
  RecordView& record = records_[serial];
  record.status = CertStatus::kRevoked;
  record.revocation_time = when;
  record.reason = reason;
  Notify(serial);
}

void Responder::Remove(const x509::Serial& serial) {
  records_.erase(serial);
  Notify(serial);
}

std::optional<Responder::RecordView> Responder::Lookup(
    const x509::Serial& serial) const {
  auto it = records_.find(serial);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<x509::Serial, Responder::RecordView>>
Responder::SnapshotRecords() const {
  std::vector<std::pair<x509::Serial, RecordView>> out;
  out.reserve(records_.size());
  for (const auto& [serial, record] : records_) out.emplace_back(serial, record);
  return out;
}

SingleResponse Responder::MakeSingle(const x509::Serial& serial,
                                     const std::optional<RecordView>& record,
                                     util::Timestamp now) const {
  SingleResponse single;
  single.cert_id.issuer_name_hash = issuer_name_hash_;
  single.cert_id.issuer_key_hash = issuer_key_hash_;
  single.cert_id.serial = serial;
  single.this_update = now;
  single.next_update = now + validity_seconds_;

  if (!record) {
    single.status = CertStatus::kUnknown;
  } else if (record->status == CertStatus::kRevoked &&
             record->revocation_time > now) {
    // Revocation scheduled but not yet effective (simulation timelines are
    // planned up front): still good as of `now`.
    single.status = CertStatus::kGood;
  } else {
    single.status = record->status;
    single.revocation_time = record->revocation_time;
    single.reason = record->reason;
  }
  return single;
}

OcspResponse Responder::Sign(const std::vector<SingleResponse>& singles,
                             util::Timestamp produced_at,
                             BytesView nonce) const {
  return SignOcspResponse(singles, produced_at, key_, nonce);
}

OcspResponse Responder::StatusFor(const x509::Serial& serial,
                                  util::Timestamp now) const {
  return Sign({MakeSingle(serial, Lookup(serial), now)}, now);
}

Bytes Responder::Handle(BytesView request_der, util::Timestamp now) const {
  auto request = ParseOcspRequest(request_der);
  if (!request) return MakeErrorResponse(ResponseStatus::kMalformedRequest).der;
  std::vector<SingleResponse> singles;
  singles.reserve(request->cert_ids.size());
  for (const CertId& id : request->cert_ids) {
    if (id.issuer_name_hash != issuer_name_hash_ ||
        id.issuer_key_hash != issuer_key_hash_) {
      return MakeErrorResponse(ResponseStatus::kUnauthorized).der;
    }
    singles.push_back(MakeSingle(id.serial, Lookup(id.serial), now));
  }
  return Sign(singles, now, request->nonce).der;
}

}  // namespace rev::ocsp
