// The simulated internet: a population of HTTPS servers with lifetimes.
//
// Stands in for the live hosts behind the Rapid7 and Michigan scans. Each
// server advertises a certificate chain during its [birth, death) interval —
// including, as the paper observes, servers that keep advertising expired or
// revoked certificates ("atypical" timelines, Fig. 1).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tls/handshake.h"
#include "util/time.h"
#include "x509/certificate.h"
#include "x509/verify.h"

namespace rev::scan {

struct Server {
  std::uint32_t ip = 0;
  x509::CertPtr leaf;
  // Full advertised chain, leaf first (excluding the root).
  std::vector<x509::CertPtr> chain;
  // TLS behavior (stapling config and staple cache state).
  tls::TlsServer tls;
  util::Timestamp birth = 0;
  util::Timestamp death = 0;  // exclusive; 0 = still alive at end of study

  bool AliveAt(util::Timestamp t) const {
    return t >= birth && (death == 0 || t < death);
  }
};

class Internet {
 public:
  // Adds a server; returns its index (stable handle).
  std::size_t AddServer(Server server);

  Server& server(std::size_t index) { return servers_[index]; }
  const Server& server(std::size_t index) const { return servers_[index]; }
  std::size_t size() const { return servers_.size(); }

  // Invokes `fn` for every server alive at `t`.
  void ForEachAlive(util::Timestamp t,
                    const std::function<void(Server&)>& fn);
  void ForEachAlive(util::Timestamp t,
                    const std::function<void(const Server&)>& fn) const;

  // Terminates a server's advertisement (e.g. admin rotated the cert).
  void Kill(std::size_t index, util::Timestamp when);

 private:
  std::vector<Server> servers_;
};

}  // namespace rev::scan
