#include "scan/scanner.h"

namespace rev::scan {

void StreamCertScan(const Internet& internet, util::Timestamp t,
                    const std::function<void(const CertObservation&)>& fn) {
  CertObservation obs;  // reused: the callback borrows it per server
  internet.ForEachAlive(t, [&](const Server& server) {
    obs.ip = server.ip;
    obs.chain = server.chain;
    fn(obs);
  });
}

CertScanSnapshot RunCertScan(const Internet& internet, util::Timestamp t) {
  CertScanSnapshot snapshot;
  snapshot.time = t;
  StreamCertScan(internet, t, [&](const CertObservation& obs) {
    snapshot.observations.push_back(obs);
  });
  return snapshot;
}

HandshakeScanSnapshot RunHandshakeScan(Internet& internet, util::Timestamp t) {
  HandshakeScanSnapshot snapshot;
  snapshot.time = t;
  tls::ClientHello hello;
  hello.status_request = true;
  internet.ForEachAlive(t, [&](Server& server) {
    const tls::ServerHello response = server.tls.Handshake(hello, t);
    HandshakeObservation obs;
    obs.ip = server.ip;
    obs.leaf = server.leaf;
    obs.sent_staple = !response.stapled_ocsp.empty();
    snapshot.observations.push_back(std::move(obs));
  });
  return snapshot;
}

int AttemptsUntilStaple(Server& server, util::Timestamp start, int attempts,
                        std::int64_t gap_seconds) {
  tls::ClientHello hello;
  hello.status_request = true;
  for (int i = 1; i <= attempts; ++i) {
    const util::Timestamp t = start + (i - 1) * gap_seconds;
    const tls::ServerHello response = server.tls.Handshake(hello, t);
    if (!response.stapled_ocsp.empty()) return i;
  }
  return 0;
}

}  // namespace rev::scan
