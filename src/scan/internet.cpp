#include "scan/internet.h"

namespace rev::scan {

std::size_t Internet::AddServer(Server server) {
  servers_.push_back(std::move(server));
  return servers_.size() - 1;
}

void Internet::ForEachAlive(util::Timestamp t,
                            const std::function<void(Server&)>& fn) {
  for (Server& s : servers_)
    if (s.AliveAt(t)) fn(s);
}

void Internet::ForEachAlive(util::Timestamp t,
                            const std::function<void(const Server&)>& fn) const {
  for (const Server& s : servers_)
    if (s.AliveAt(t)) fn(s);
}

void Internet::Kill(std::size_t index, util::Timestamp when) {
  servers_[index].death = when;
}

}  // namespace rev::scan
