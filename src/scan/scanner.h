// Scanners over the simulated internet.
//
// CertScanner reproduces the Rapid7-style port-443 certificate harvest the
// paper builds its Leaf Set from (§3.1); HandshakeScanner reproduces the
// University of Michigan TLS-handshake scans used to measure OCSP Stapling
// support (§4.3), including the repeat-connection protocol behind Fig. 3.
//
// Observations reference shared Certificate objects (scans of a 13M-server
// population would otherwise duplicate gigabytes of DER); the DER wire
// format is exercised end-to-end by the browser test harness instead.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "scan/internet.h"
#include "util/bytes.h"
#include "util/time.h"

namespace rev::scan {

struct CertObservation {
  std::uint32_t ip = 0;
  // Advertised chain, leaf first (excluding the root).
  std::vector<x509::CertPtr> chain;
};

struct CertScanSnapshot {
  util::Timestamp time = 0;
  std::vector<CertObservation> observations;
};

// Streaming scan: invokes `fn` with each alive server's observation as it is
// harvested, never materializing the whole snapshot. This is the ingest path
// for Pipeline::BeginScan/Observe — a 13M-server snapshot stays O(1)
// resident instead of O(servers).
void StreamCertScan(const Internet& internet, util::Timestamp t,
                    const std::function<void(const CertObservation&)>& fn);

// Scans every alive server, harvesting advertised chains into one resident
// snapshot (tests and archival replay; large populations should stream).
CertScanSnapshot RunCertScan(const Internet& internet, util::Timestamp t);

struct HandshakeObservation {
  std::uint32_t ip = 0;
  x509::CertPtr leaf;
  bool sent_staple = false;
};

struct HandshakeScanSnapshot {
  util::Timestamp time = 0;
  std::vector<HandshakeObservation> observations;
};

// Performs one TLS handshake (with status_request) against every alive
// server. Mutates server staple caches, exactly like a real scan warms
// nginx's OCSP cache.
HandshakeScanSnapshot RunHandshakeScan(Internet& internet, util::Timestamp t);

// Repeatedly connects to one server, `attempts` times with `gap_seconds`
// between connections, and reports after how many attempts a staple was
// first observed (0 = never). This is the paper's 20,000-server repeat
// experiment (Fig. 3).
int AttemptsUntilStaple(Server& server, util::Timestamp start, int attempts,
                        std::int64_t gap_seconds = 3);

}  // namespace rev::scan
