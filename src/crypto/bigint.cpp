#include "crypto/bigint.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace rev::crypto {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}

BigInt::BigInt(std::uint64_t v) {
  if (v) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::FromBytes(BytesView be) {
  BigInt out;
  for (std::uint8_t byte : be) {
    // out = out*256 + byte
    std::uint64_t carry = byte;
    for (auto& limb : out.limbs_) {
      const std::uint64_t v = (static_cast<std::uint64_t>(limb) << 8) | carry;
      limb = static_cast<std::uint32_t>(v);
      carry = v >> 32;
    }
    if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  out.Trim();
  return out;
}

Bytes BigInt::ToBytes() const {
  Bytes out;
  out.reserve(limbs_.size() * 4);
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 24));
    out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 16));
    out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 8));
    out.push_back(static_cast<std::uint8_t>(limbs_[i]));
  }
  // Strip leading zero bytes.
  std::size_t skip = 0;
  while (skip < out.size() && out[skip] == 0) ++skip;
  out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(skip));
  return out;
}

BigInt BigInt::FromDecimal(std::string_view s) {
  BigInt out;
  for (char c : s) {
    if (c < '0' || c > '9') throw std::invalid_argument("bad decimal digit");
    // out = out*10 + digit
    std::uint64_t carry = static_cast<std::uint64_t>(c - '0');
    for (auto& limb : out.limbs_) {
      const std::uint64_t v = static_cast<std::uint64_t>(limb) * 10 + carry;
      limb = static_cast<std::uint32_t>(v);
      carry = v >> 32;
    }
    if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  return out;
}

std::string BigInt::ToDecimal() const {
  if (IsZero()) return "0";
  std::vector<std::uint32_t> work = limbs_;
  std::string digits;
  while (!work.empty()) {
    // Divide work by 10, collecting remainder.
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const std::uint64_t v = (rem << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(v / 10);
      rem = v % 10;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    digits.push_back(static_cast<char>('0' + rem));
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigInt BigInt::RandomBits(util::Rng& rng, int bits) {
  assert(bits >= 2);
  BigInt out;
  const int limbs = (bits + 31) / 32;
  out.limbs_.resize(static_cast<std::size_t>(limbs));
  for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng.Next());
  const int top_bits = bits - (limbs - 1) * 32;  // bits in the top limb, [1,32]
  std::uint32_t& top = out.limbs_.back();
  if (top_bits < 32) top &= (1u << top_bits) - 1;
  top |= 1u << (top_bits - 1);  // force exact bit length
  return out;
}

BigInt BigInt::RandomBelow(util::Rng& rng, const BigInt& bound) {
  assert(!bound.IsZero());
  const int bits = bound.BitLength();
  const int limbs = (bits + 31) / 32;
  for (;;) {
    BigInt out;
    out.limbs_.resize(static_cast<std::size_t>(limbs));
    for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng.Next());
    const int top_bits = bits - (limbs - 1) * 32;
    if (top_bits < 32) out.limbs_.back() &= (1u << top_bits) - 1;
    out.Trim();
    if (Compare(out, bound) < 0) return out;
  }
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  int bits = static_cast<int>(limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(int i) const {
  const std::size_t limb = static_cast<std::size_t>(i / 32);
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& a, const BigInt& b) {
  BigInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt BigInt::Sub(const BigInt& a, const BigInt& b) {
  assert(Compare(a, b) >= 0);
  BigInt out;
  out.limbs_.resize(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.Trim();
  return out;
}

BigInt BigInt::Mul(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry) {
      const std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

void BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                    BigInt* quotient, BigInt* remainder) {
  if (divisor.IsZero()) throw std::domain_error("division by zero");
  if (Compare(dividend, divisor) < 0) {
    if (quotient) *quotient = BigInt();
    if (remainder) *remainder = dividend;
    return;
  }
  if (divisor.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const std::uint64_t d = divisor.limbs_[0];
    BigInt q;
    q.limbs_.resize(dividend.limbs_.size());
    std::uint64_t rem = 0;
    for (std::size_t i = dividend.limbs_.size(); i-- > 0;) {
      const std::uint64_t v = (rem << 32) | dividend.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(v / d);
      rem = v % d;
    }
    q.Trim();
    if (quotient) *quotient = std::move(q);
    if (remainder) *remainder = BigInt(rem);
    return;
  }

  // Knuth Algorithm D (TAOCP Vol. 2, 4.3.1) with 32-bit digits.
  const std::size_t n = divisor.limbs_.size();
  const std::size_t m = dividend.limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  {
    std::uint32_t top = divisor.limbs_.back();
    while (!(top & 0x80000000u)) {
      top <<= 1;
      ++shift;
    }
  }
  const BigInt u_big = dividend.ShiftLeft(shift);
  const BigInt v_big = divisor.ShiftLeft(shift);
  std::vector<std::uint32_t> u = u_big.limbs_;
  u.resize(dividend.limbs_.size() + 1, 0);  // ensure u has m+n+1 digits
  const std::vector<std::uint32_t>& v = v_big.limbs_;
  assert(v.size() == n);

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  const std::uint64_t v_top = v[n - 1];
  const std::uint64_t v_next = v[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q_hat.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / v_top;
    std::uint64_t r_hat = numerator % v_top;
    while (q_hat >= kBase ||
           q_hat * v_next > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= kBase) break;
    }

    // D4: multiply and subtract u[j..j+n] -= q_hat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      const std::int64_t diff = static_cast<std::int64_t>(u[j + i]) -
                                static_cast<std::int64_t>(product & 0xFFFFFFFFull) -
                                borrow;
      u[j + i] = static_cast<std::uint32_t>(diff);
      borrow = diff < 0 ? 1 : 0;
    }
    const std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                              static_cast<std::int64_t>(carry) - borrow;
    u[j + n] = static_cast<std::uint32_t>(diff);

    // D5/D6: if we subtracted too much, add back.
    if (diff < 0) {
      --q_hat;
      std::uint64_t carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u[j + i]) + v[i] + carry2;
        u[j + i] = static_cast<std::uint32_t>(sum);
        carry2 = sum >> 32;
      }
      u[j + n] = static_cast<std::uint32_t>(u[j + n] + carry2);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(q_hat);
  }

  q.Trim();
  if (quotient) *quotient = std::move(q);
  if (remainder) {
    BigInt r;
    r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
    r.Trim();
    *remainder = r.ShiftRight(shift);
  }
}

BigInt BigInt::Mod(const BigInt& a, const BigInt& m) {
  BigInt r;
  DivMod(a, m, nullptr, &r);
  return r;
}

BigInt BigInt::ShiftLeft(int bits) const {
  if (IsZero() || bits == 0) return *this;
  const int limb_shift = bits / 32;
  const int bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + static_cast<std::size_t>(limb_shift) + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + static_cast<std::size_t>(limb_shift)] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + static_cast<std::size_t>(limb_shift) + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftRight(int bits) const {
  if (IsZero() || bits == 0) return *this;
  const std::size_t limb_shift = static_cast<std::size_t>(bits) / 32;
  const int bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.resize(limbs_.size() - limb_shift);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ModExp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(Compare(m, BigInt(1)) > 0);
  BigInt result(1);
  BigInt b = Mod(base, m);
  const int bits = exp.BitLength();
  for (int i = 0; i < bits; ++i) {
    if (exp.Bit(i)) result = Mod(Mul(result, b), m);
    b = Mod(Mul(b, b), m);
  }
  return result;
}

bool BigInt::ModInverse(const BigInt& a, const BigInt& m, BigInt* inverse) {
  // Iterative extended Euclid keeping coefficients modulo m with sign flags.
  BigInt r0 = Mod(a, m), r1 = m;
  BigInt t0(1), t1(0);
  bool t0_neg = false, t1_neg = false;

  while (!r0.IsZero()) {
    BigInt q, r;
    DivMod(r1, r0, &q, &r);
    // (r1, r0) <- (r0, r)
    r1 = r0;
    r0 = r;
    // (t1, t0) <- (t0, t1 - q*t0)
    BigInt qt0 = Mul(q, t0);
    BigInt new_t;
    bool new_neg;
    if (t1_neg == t0_neg) {
      // t1 - q*t0 where both same sign: magnitude |t1| - q|t0| (may flip)
      if (Compare(t1, qt0) >= 0) {
        new_t = Sub(t1, qt0);
        new_neg = t1_neg;
      } else {
        new_t = Sub(qt0, t1);
        new_neg = !t1_neg;
      }
    } else {
      new_t = Add(t1, qt0);
      new_neg = t1_neg;
    }
    t1 = t0;
    t1_neg = t0_neg;
    t0 = new_t;
    t0_neg = new_neg;
  }

  if (Compare(r1, BigInt(1)) != 0) return false;  // gcd != 1
  BigInt inv = Mod(t1, m);
  if (t1_neg && !inv.IsZero()) inv = Sub(m, inv);
  *inverse = inv;
  return true;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  while (!b.IsZero()) {
    BigInt r = Mod(a, b);
    a = b;
    b = r;
  }
  return a;
}

bool BigInt::IsProbablePrime(const BigInt& n, util::Rng& rng, int rounds) {
  static const std::uint64_t kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19,
                                               23, 29, 31, 37, 41, 43, 47};
  if (n.BitLength() <= 6) {
    const std::uint64_t v = n.Low64();
    for (std::uint64_t p : kSmallPrimes)
      if (v == p) return true;
    return false;
  }
  if (!n.IsOdd()) return false;
  for (std::uint64_t p : kSmallPrimes) {
    BigInt r = Mod(n, BigInt(p));
    if (r.IsZero()) return false;
  }

  // Write n-1 = d * 2^s.
  const BigInt n_minus_1 = Sub(n, BigInt(1));
  BigInt d = n_minus_1;
  int s = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++s;
  }

  const BigInt two(2);
  const BigInt n_minus_3 = Sub(n, BigInt(3));
  for (int round = 0; round < rounds; ++round) {
    const BigInt a = Add(RandomBelow(rng, n_minus_3), two);  // [2, n-2]
    BigInt x = ModExp(a, d, n);
    if (Compare(x, BigInt(1)) == 0 || Compare(x, n_minus_1) == 0) continue;
    bool composite = true;
    for (int i = 1; i < s; ++i) {
      x = Mod(Mul(x, x), n);
      if (Compare(x, n_minus_1) == 0) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt BigInt::RandomPrime(util::Rng& rng, int bits) {
  for (;;) {
    BigInt candidate = RandomBits(rng, bits);
    if (!candidate.IsOdd()) candidate = Add(candidate, BigInt(1));
    if (candidate.BitLength() != bits) continue;  // +1 overflowed the width
    if (IsProbablePrime(candidate, rng)) return candidate;
  }
}

std::uint64_t BigInt::Low64() const {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

}  // namespace rev::crypto
