// RSA key generation and RSASSA-PKCS1-v1_5 signatures over SHA-256.
//
// This is a from-scratch textbook implementation: suitable for the
// simulation and protocol tests in this repository, NOT hardened for
// production use (no constant-time guarantees, no blinding).
#pragma once

#include "crypto/bigint.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace rev::crypto {

struct RsaPublicKey {
  BigInt n;  // modulus
  BigInt e;  // public exponent

  int ModulusBytes() const { return (n.BitLength() + 7) / 8; }
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  BigInt d;  // private exponent
};

// Generates a key with a modulus of exactly `bits` bits (e = 65537).
// Typical test sizes: 512/768 for speed, 1024+ for realism.
RsaPrivateKey RsaGenerateKey(util::Rng& rng, int bits);

// RSASSA-PKCS1-v1_5 signature over SHA-256(message).
Bytes RsaSign(const RsaPrivateKey& key, BytesView message);

// Verifies an RSASSA-PKCS1-v1_5/SHA-256 signature.
bool RsaVerify(const RsaPublicKey& key, BytesView message, BytesView signature);

}  // namespace rev::crypto
