// Arbitrary-precision unsigned integers, sufficient for RSA.
//
// Little-endian 32-bit limbs, schoolbook multiplication, Knuth Algorithm D
// division, square-and-multiply modular exponentiation, extended-Euclid
// modular inverse, and Miller–Rabin primality testing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace rev::crypto {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t v);

  // Big-endian byte import/export (as used by DER INTEGER contents).
  static BigInt FromBytes(BytesView be);
  Bytes ToBytes() const;  // minimal big-endian, empty for zero

  static BigInt FromDecimal(std::string_view s);  // ignores non-digits? no: strict
  std::string ToDecimal() const;

  // Uniform value with exactly `bits` bits (top bit set), bits >= 2.
  static BigInt RandomBits(util::Rng& rng, int bits);
  // Uniform in [0, bound).
  static BigInt RandomBelow(util::Rng& rng, const BigInt& bound);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  int BitLength() const;
  bool Bit(int i) const;

  // Comparison: negative/zero/positive like strcmp.
  static int Compare(const BigInt& a, const BigInt& b);

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return Compare(a, b) == 0;
  }
  friend auto operator<=>(const BigInt& a, const BigInt& b) {
    return Compare(a, b) <=> 0;
  }

  static BigInt Add(const BigInt& a, const BigInt& b);
  // Requires a >= b.
  static BigInt Sub(const BigInt& a, const BigInt& b);
  static BigInt Mul(const BigInt& a, const BigInt& b);
  // Requires divisor != 0. quotient/remainder may alias nothing.
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);
  static BigInt Mod(const BigInt& a, const BigInt& m);

  BigInt ShiftLeft(int bits) const;
  BigInt ShiftRight(int bits) const;

  // (base^exp) mod m; m must be > 1.
  static BigInt ModExp(const BigInt& base, const BigInt& exp, const BigInt& m);

  // Inverse of a modulo m if gcd(a, m) == 1; returns false otherwise.
  static bool ModInverse(const BigInt& a, const BigInt& m, BigInt* inverse);

  static BigInt Gcd(BigInt a, BigInt b);

  // Miller–Rabin with `rounds` random bases (plus fixed small bases).
  static bool IsProbablePrime(const BigInt& n, util::Rng& rng, int rounds = 24);

  // Random prime with exactly `bits` bits.
  static BigInt RandomPrime(util::Rng& rng, int bits);

  // Low 64 bits (for small values / tests).
  std::uint64_t Low64() const;

 private:
  void Trim();

  std::vector<std::uint32_t> limbs_;  // little-endian; no trailing zeros
};

}  // namespace rev::crypto
