#include "crypto/rsa.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace rev::crypto {

namespace {

// DER-encoded DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
constexpr std::uint8_t kSha256DigestInfoPrefix[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

// EMSA-PKCS1-v1_5 encoding of SHA-256(message) into `em_len` bytes.
Bytes EncodeEmsa(BytesView message, int em_len) {
  const Sha256Digest digest = Sha256::Hash(message);
  const std::size_t t_len = sizeof(kSha256DigestInfoPrefix) + digest.size();
  if (static_cast<std::size_t>(em_len) < t_len + 11)
    throw std::invalid_argument("RSA modulus too small for SHA-256 EMSA");
  Bytes em;
  em.reserve(static_cast<std::size_t>(em_len));
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), static_cast<std::size_t>(em_len) - t_len - 3, 0xFF);
  em.push_back(0x00);
  em.insert(em.end(), std::begin(kSha256DigestInfoPrefix),
            std::end(kSha256DigestInfoPrefix));
  em.insert(em.end(), digest.begin(), digest.end());
  return em;
}

}  // namespace

RsaPrivateKey RsaGenerateKey(util::Rng& rng, int bits) {
  const BigInt e(65537);
  for (;;) {
    const BigInt p = BigInt::RandomPrime(rng, bits / 2);
    const BigInt q = BigInt::RandomPrime(rng, bits - bits / 2);
    if (p == q) continue;
    const BigInt n = BigInt::Mul(p, q);
    if (n.BitLength() != bits) continue;
    const BigInt phi =
        BigInt::Mul(BigInt::Sub(p, BigInt(1)), BigInt::Sub(q, BigInt(1)));
    BigInt d;
    if (!BigInt::ModInverse(e, phi, &d)) continue;  // gcd(e, phi) != 1
    RsaPrivateKey key;
    key.pub.n = n;
    key.pub.e = e;
    key.d = d;
    return key;
  }
}

Bytes RsaSign(const RsaPrivateKey& key, BytesView message) {
  const int k = key.pub.ModulusBytes();
  const Bytes em = EncodeEmsa(message, k);
  const BigInt m = BigInt::FromBytes(em);
  const BigInt s = BigInt::ModExp(m, key.d, key.pub.n);
  Bytes sig = s.ToBytes();
  // Left-pad to modulus length.
  Bytes out(static_cast<std::size_t>(k) - sig.size(), 0);
  out.insert(out.end(), sig.begin(), sig.end());
  return out;
}

bool RsaVerify(const RsaPublicKey& key, BytesView message, BytesView signature) {
  const int k = key.ModulusBytes();
  if (signature.size() != static_cast<std::size_t>(k)) return false;
  const BigInt s = BigInt::FromBytes(signature);
  if (BigInt::Compare(s, key.n) >= 0) return false;
  const BigInt m = BigInt::ModExp(s, key.e, key.n);
  Bytes em = m.ToBytes();
  // Left-pad to modulus length (ToBytes strips leading zeros).
  Bytes padded(static_cast<std::size_t>(k) - em.size(), 0);
  padded.insert(padded.end(), em.begin(), em.end());
  const Bytes expected = EncodeEmsa(message, k);
  return padded == expected;
}

}  // namespace rev::crypto
