// Signature abstraction used by certificates, CRLs, and OCSP responses.
//
// Two schemes implement the same interface:
//  - kRsaSha256: real RSASSA-PKCS1-v1_5/SHA-256 (see rsa.h). Used in crypto
//    tests and the quickstart example.
//  - kSimSha256: a deterministic simulation scheme where the "signature" is
//    HMAC-SHA256 keyed by the *public* identifier. It is NOT secure (anyone
//    can forge), but it is cheap, deterministic, and — crucially — tampering
//    with the message or signature still fails verification, so the entire
//    issue/verify plumbing is exercised at ecosystem scale. The substitution
//    is documented in DESIGN.md.
#pragma once

#include <cstdint>

#include "crypto/rsa.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace rev::crypto {

enum class KeyType : std::uint8_t { kRsaSha256, kSimSha256 };

// Public half of a key. For kSimSha256, `sim_id` is a 32-byte identifier
// that doubles as the verification key.
struct PublicKey {
  KeyType type = KeyType::kSimSha256;
  RsaPublicKey rsa;  // meaningful iff type == kRsaSha256
  Bytes sim_id;      // meaningful iff type == kSimSha256

  // Stable comparison for use as map keys / dedup.
  friend bool operator==(const PublicKey& a, const PublicKey& b);
};

struct KeyPair {
  KeyType type = KeyType::kSimSha256;
  RsaPrivateKey rsa;  // meaningful iff kRsaSha256
  Bytes sim_id;       // meaningful iff kSimSha256

  PublicKey Public() const;
};

// Generates a key pair. `rsa_bits` only applies to kRsaSha256.
KeyPair GenerateKeyPair(util::Rng& rng, KeyType type, int rsa_bits = 1024);

// Deterministic sim key pair derived from a label (used by the ecosystem
// generator so runs are reproducible without storing key material).
KeyPair SimKeyFromLabel(std::string_view label);

// Signs `message` with the private key.
Bytes Sign(const KeyPair& key, BytesView message);

// Verifies `signature` over `message` against the public key.
bool Verify(const PublicKey& key, BytesView message, BytesView signature);

}  // namespace rev::crypto
