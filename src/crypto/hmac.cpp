#include "crypto/hmac.h"

#include <algorithm>
#include <array>

namespace rev::crypto {

PrecomputedHmacKey::PrecomputedHmacKey(BytesView key) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Sha256Digest kd = Sha256::Hash(key);
    std::copy(kd.begin(), kd.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }
  inner_.Update(BytesView(ipad.data(), ipad.size()));
  outer_.Update(BytesView(opad.data(), opad.size()));
}

Sha256Digest PrecomputedHmacKey::Tag(BytesView message) const {
  Sha256 inner = inner_;  // mid-state copies: the key block is already absorbed
  inner.Update(message);
  const Sha256Digest inner_digest = inner.Finish();

  Sha256 outer = outer_;
  outer.Update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Sha256Digest HmacSha256(BytesView key, BytesView message) {
  return PrecomputedHmacKey(key).Tag(message);
}

Bytes DeriveKey(BytesView key, std::string_view label, std::size_t n) {
  Bytes out;
  out.reserve(n);
  std::uint8_t counter = 1;
  while (out.size() < n) {
    Bytes msg(label.begin(), label.end());
    msg.push_back(counter++);
    const Sha256Digest block = HmacSha256(key, msg);
    const std::size_t take = std::min(n - out.size(), block.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

}  // namespace rev::crypto
