// HMAC-SHA256 (RFC 2104). Backing primitive for the SimSigner tag scheme
// and for deterministic per-entity key derivation in the ecosystem model.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace rev::crypto {

Sha256Digest HmacSha256(BytesView key, BytesView message);

// Deterministic key derivation: HMAC(key, label) truncated/expanded to `n`
// bytes by counter-mode iteration (HKDF-expand flavoured, single info).
Bytes DeriveKey(BytesView key, std::string_view label, std::size_t n);

}  // namespace rev::crypto
