// HMAC-SHA256 (RFC 2104). Backing primitive for the SimSigner tag scheme
// and for deterministic per-entity key derivation in the ecosystem model.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace rev::crypto {

Sha256Digest HmacSha256(BytesView key, BytesView message);

// Precomputed HMAC key: the SHA-256 mid-states after absorbing the ipad and
// opad blocks are captured once, so each Tag() costs two context copies
// instead of two fresh key-block compressions. This roughly halves the
// compression count for short messages — the batched SimSigner verify in
// Pipeline::Finalize() reuses one PrecomputedHmacKey per issuer across
// millions of leaves. Tag(m) == HmacSha256(key, m) exactly (unit-tested).
class PrecomputedHmacKey {
 public:
  explicit PrecomputedHmacKey(BytesView key);

  Sha256Digest Tag(BytesView message) const;

 private:
  Sha256 inner_;  // state after Update(ipad)
  Sha256 outer_;  // state after Update(opad)
};

// Deterministic key derivation: HMAC(key, label) truncated/expanded to `n`
// bytes by counter-mode iteration (HKDF-expand flavoured, single info).
Bytes DeriveKey(BytesView key, std::string_view label, std::size_t n);

}  // namespace rev::crypto
