// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for certificate fingerprints, CRLSet parent keys (SPKI hashes),
// RSASSA-PKCS1-v1_5 digests, and the SimSigner tag scheme.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace rev::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

// Incremental hashing context.
class Sha256 {
 public:
  Sha256();

  void Update(BytesView data);
  Sha256Digest Finish();

  // One-shot convenience.
  static Sha256Digest Hash(BytesView data);

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

// Digest as a byte vector (handy for APIs taking Bytes).
Bytes Sha256Bytes(BytesView data);

}  // namespace rev::crypto
