#include "crypto/signer.h"

#include <stdexcept>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace rev::crypto {

bool operator==(const PublicKey& a, const PublicKey& b) {
  if (a.type != b.type) return false;
  if (a.type == KeyType::kRsaSha256)
    return a.rsa.n == b.rsa.n && a.rsa.e == b.rsa.e;
  return a.sim_id == b.sim_id;
}

PublicKey KeyPair::Public() const {
  PublicKey pk;
  pk.type = type;
  if (type == KeyType::kRsaSha256) {
    pk.rsa = rsa.pub;
  } else {
    pk.sim_id = sim_id;
  }
  return pk;
}

KeyPair GenerateKeyPair(util::Rng& rng, KeyType type, int rsa_bits) {
  KeyPair kp;
  kp.type = type;
  if (type == KeyType::kRsaSha256) {
    kp.rsa = RsaGenerateKey(rng, rsa_bits);
  } else {
    kp.sim_id.resize(kSha256DigestSize);
    rng.Fill(kp.sim_id.data(), kp.sim_id.size());
  }
  return kp;
}

KeyPair SimKeyFromLabel(std::string_view label) {
  KeyPair kp;
  kp.type = KeyType::kSimSha256;
  const Sha256Digest d = Sha256::Hash(ToBytes(label));
  kp.sim_id.assign(d.begin(), d.end());
  return kp;
}

Bytes Sign(const KeyPair& key, BytesView message) {
  if (key.type == KeyType::kRsaSha256) return RsaSign(key.rsa, message);
  const Sha256Digest tag = HmacSha256(key.sim_id, message);
  return Bytes(tag.begin(), tag.end());
}

bool Verify(const PublicKey& key, BytesView message, BytesView signature) {
  if (key.type == KeyType::kRsaSha256)
    return RsaVerify(key.rsa, message, signature);
  if (key.sim_id.empty()) return false;
  const Sha256Digest tag = HmacSha256(key.sim_id, message);
  return signature.size() == tag.size() &&
         std::equal(tag.begin(), tag.end(), signature.begin());
}

}  // namespace rev::crypto
