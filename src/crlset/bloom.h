// A Bloom filter over revoked-certificate identities — the paper's proposed
// CRLSet replacement (§7.4): no false negatives, a tunable false-positive
// rate, and an order of magnitude more revocations in the same 250 KB.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace rev::crlset {

class BloomFilter {
 public:
  // `m_bits` filter size in bits (>0), `k` hash functions (>0).
  BloomFilter(std::size_t m_bits, int k);

  // Optimal parameters for `n` expected insertions at false-positive rate
  // `p`: m = -n ln p / (ln 2)^2, k = ceil(m/n * ln 2).
  static BloomFilter ForCapacity(std::size_t n, double p);

  // Expected false-positive rate after `n` insertions into this filter:
  // (1 - e^{-kn/m})^k.
  static double ExpectedFpr(std::size_t m_bits, int k, std::size_t n);

  void Insert(BytesView key);
  bool MayContain(BytesView key) const;

  std::size_t SizeBytes() const { return bits_.size(); }
  std::size_t SizeBits() const { return m_; }
  int hash_count() const { return k_; }
  std::size_t inserted() const { return inserted_; }

  // Measures the actual false-positive rate against `probes` random keys
  // known not to be inserted (keys derived from `seed`).
  double MeasureFpr(std::size_t probes, std::uint64_t seed) const;

 private:
  std::size_t m_;  // bits
  int k_;
  Bytes bits_;
  std::size_t inserted_ = 0;
};

// Convenience key for (parent, serial) pairs.
Bytes RevocationKey(BytesView parent_spki_sha256, BytesView serial);

}  // namespace rev::crlset
