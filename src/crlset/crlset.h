// Chrome's CRLSet structure (§7.1).
//
// A CRLSet is a map from "parent" (SHA-256 of the issuing certificate's
// SubjectPublicKeyInfo) to the serial numbers of revoked certificates signed
// by that parent, plus a small list of blocked SPKIs. It is distributed
// out-of-band and consulted at connection time with zero network cost.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "util/bytes.h"
#include "x509/certificate.h"

namespace rev::crlset {

class CrlSet {
 public:
  // Monotonic version counter, as in the real delivery channel.
  int sequence = 0;

  void AddEntry(const Bytes& parent_spki_sha256, const x509::Serial& serial);
  void AddBlockedSpki(const Bytes& spki_sha256);

  bool CoversParent(const Bytes& parent_spki_sha256) const;
  bool IsRevoked(const Bytes& parent_spki_sha256,
                 const x509::Serial& serial) const;
  bool IsBlockedSpki(const Bytes& spki_sha256) const;

  std::size_t NumParents() const { return parents_.size(); }
  std::size_t NumEntries() const;

  const std::map<Bytes, std::set<x509::Serial>>& parents() const {
    return parents_;
  }
  const std::set<Bytes>& blocked_spkis() const { return blocked_spkis_; }

  // Binary serialization (length-prefixed; stands in for the real format).
  Bytes Serialize() const;
  static std::optional<CrlSet> Deserialize(BytesView data);

  // Exact size of Serialize()'s output, computed arithmetically from the
  // container sizes — no serialization pass, no allocation. A regression
  // test pins it equal to Serialize().size().
  std::size_t SerializedSize() const;

 private:
  std::map<Bytes, std::set<x509::Serial>> parents_;
  std::set<Bytes> blocked_spkis_;
};

}  // namespace rev::crlset
