#include "crlset/onecrl.h"

namespace rev::crlset {

void OneCrl::AddEntry(const x509::Name& issuer, const x509::Serial& serial) {
  entries_.emplace(issuer.Encode(), serial);
}

bool OneCrl::IsRevoked(const x509::Name& issuer,
                       const x509::Serial& serial) const {
  return entries_.contains({issuer.Encode(), serial});
}

bool OneCrl::Blocks(const x509::Certificate& intermediate) const {
  return intermediate.IsCa() &&
         IsRevoked(intermediate.tbs.issuer, intermediate.tbs.serial);
}

}  // namespace rev::crlset
