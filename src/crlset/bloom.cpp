#include "crlset/bloom.h"

#include <cmath>

#include "crypto/sha256.h"

namespace rev::crlset {

namespace {

// Two independent 64-bit hashes from a SHA-256 of the key; g_i = h1 + i*h2
// (Kirsch–Mitzenmacher double hashing).
struct HashPair {
  std::uint64_t h1;
  std::uint64_t h2;
};

HashPair HashKey(BytesView key) {
  const crypto::Sha256Digest d = crypto::Sha256::Hash(key);
  HashPair h{0, 0};
  for (int i = 0; i < 8; ++i) {
    h.h1 = (h.h1 << 8) | d[static_cast<std::size_t>(i)];
    h.h2 = (h.h2 << 8) | d[static_cast<std::size_t>(i + 8)];
  }
  if (h.h2 == 0) h.h2 = 0x9E3779B97F4A7C15ull;
  return h;
}

}  // namespace

BloomFilter::BloomFilter(std::size_t m_bits, int k)
    : m_(m_bits == 0 ? 8 : m_bits), k_(k <= 0 ? 1 : k) {
  bits_.assign((m_ + 7) / 8, 0);
}

BloomFilter BloomFilter::ForCapacity(std::size_t n, double p) {
  if (n == 0) n = 1;
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(n) * std::log(p) / (ln2 * ln2);
  const int k = static_cast<int>(std::ceil(m / static_cast<double>(n) * ln2));
  return BloomFilter(static_cast<std::size_t>(std::ceil(m)), k);
}

double BloomFilter::ExpectedFpr(std::size_t m_bits, int k, std::size_t n) {
  if (m_bits == 0) return 1.0;
  const double exponent = -static_cast<double>(k) * static_cast<double>(n) /
                          static_cast<double>(m_bits);
  return std::pow(1.0 - std::exp(exponent), k);
}

void BloomFilter::Insert(BytesView key) {
  const HashPair h = HashKey(key);
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit =
        (h.h1 + static_cast<std::uint64_t>(i) * h.h2) % m_;
    bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  ++inserted_;
}

bool BloomFilter::MayContain(BytesView key) const {
  const HashPair h = HashKey(key);
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit =
        (h.h1 + static_cast<std::uint64_t>(i) * h.h2) % m_;
    if (!(bits_[bit / 8] & (1u << (bit % 8)))) return false;
  }
  return true;
}

double BloomFilter::MeasureFpr(std::size_t probes, std::uint64_t seed) const {
  if (probes == 0) return 0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < probes; ++i) {
    Bytes key(16);
    std::uint64_t v = seed + i * 0xD1B54A32D192ED03ull;
    for (std::size_t b = 0; b < key.size(); ++b) {
      v ^= v >> 33;
      v *= 0xFF51AFD7ED558CCDull;
      key[b] = static_cast<std::uint8_t>(v >> (8 * (b % 8)));
    }
    key[0] = 0xFB;  // distinct namespace from RevocationKey outputs
    if (MayContain(key)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(probes);
}

Bytes RevocationKey(BytesView parent_spki_sha256, BytesView serial) {
  Bytes key;
  key.reserve(parent_spki_sha256.size() + serial.size() + 1);
  key.push_back(0x01);  // namespace tag
  Append(key, parent_spki_sha256);
  Append(key, serial);
  return key;
}

}  // namespace rev::crlset
