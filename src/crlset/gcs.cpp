#include "crlset/gcs.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace rev::crlset {

namespace {

class BitWriter {
 public:
  void WriteBit(bool bit) {
    if (bit_pos_ == 0) data_.push_back(0);
    if (bit) data_.back() |= static_cast<std::uint8_t>(1u << (7 - bit_pos_));
    bit_pos_ = (bit_pos_ + 1) % 8;
  }
  void WriteUnary(std::uint64_t q) {
    for (std::uint64_t i = 0; i < q; ++i) WriteBit(true);
    WriteBit(false);
  }
  void WriteBits(std::uint64_t value, int bits) {
    for (int i = bits - 1; i >= 0; --i) WriteBit((value >> i) & 1);
  }
  Bytes Take() { return std::move(data_); }

 private:
  Bytes data_;
  int bit_pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(BytesView data) : data_(data) {}
  bool ReadBit(bool* bit) {
    if (pos_ / 8 >= data_.size()) return false;
    *bit = (data_[pos_ / 8] >> (7 - pos_ % 8)) & 1;
    ++pos_;
    return true;
  }
  bool ReadUnary(std::uint64_t* q) {
    *q = 0;
    bool bit;
    while (ReadBit(&bit)) {
      if (!bit) return true;
      ++*q;
    }
    return false;
  }
  bool ReadBits(int bits, std::uint64_t* value) {
    *value = 0;
    for (int i = 0; i < bits; ++i) {
      bool bit;
      if (!ReadBit(&bit)) return false;
      *value = (*value << 1) | (bit ? 1 : 0);
    }
    return true;
  }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

std::uint64_t Hash64(BytesView key) {
  const crypto::Sha256Digest d = crypto::Sha256::Hash(key);
  std::uint64_t h = 0;
  for (int i = 0; i < 8; ++i) h = (h << 8) | d[static_cast<std::size_t>(i)];
  return h;
}

}  // namespace

std::uint64_t GolombCompressedSet::HashToRange(BytesView key) const {
  if (range_ == 0) return 0;
  // Modulo mapping of a 64-bit hash into [0, range_); the bias is
  // negligible since range_ << 2^64.
  return Hash64(key) % range_;
}

GolombCompressedSet GolombCompressedSet::Build(const std::vector<Bytes>& keys,
                                               int log2_inverse_fpr) {
  GolombCompressedSet set;
  // 1ull << p is UB outside [0, 63]; a shift that overflows range_ would
  // silently wrap. 56 keeps keys.size() << p exact for any realistic set.
  set.rice_param_ = std::clamp(log2_inverse_fpr, 0, 56);
  set.num_keys_ = keys.size();
  set.range_ = static_cast<std::uint64_t>(keys.size()) << set.rice_param_;
  if (keys.empty()) return set;

  std::vector<std::uint64_t> values;
  values.reserve(keys.size());
  for (const Bytes& key : keys) values.push_back(set.HashToRange(key));
  std::sort(values.begin(), values.end());
  // Duplicate keys (or colliding hashes) would otherwise encode as delta-0
  // entries: harmless to queries but wasted bits, and num_keys_ would
  // overstate the set. MayContain's decode loop runs num_keys_ entries, so
  // the count must match what is actually encoded.
  values.erase(std::unique(values.begin(), values.end()), values.end());
  set.num_keys_ = values.size();

  BitWriter writer;
  std::uint64_t previous = 0;
  for (std::uint64_t v : values) {
    const std::uint64_t delta = v - previous;
    previous = v;
    writer.WriteUnary(delta >> set.rice_param_);
    writer.WriteBits(delta & ((1ull << set.rice_param_) - 1),
                     set.rice_param_);
  }
  set.data_ = writer.Take();
  return set;
}

bool GolombCompressedSet::MayContain(BytesView key) const {
  if (num_keys_ == 0) return false;
  const std::uint64_t target = HashToRange(key);
  BitReader reader(data_);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < num_keys_; ++i) {
    std::uint64_t quotient, remainder;
    if (!reader.ReadUnary(&quotient) ||
        !reader.ReadBits(rice_param_, &remainder))
      return false;
    value += (quotient << rice_param_) | remainder;
    if (value == target) return true;
    if (value > target) return false;
  }
  return false;
}

}  // namespace rev::crlset
