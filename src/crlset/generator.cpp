#include "crlset/generator.h"

namespace rev::crlset {

bool IsCrlSetReasonCode(x509::ReasonCode reason) {
  switch (reason) {
    case x509::ReasonCode::kNoReasonCode:
    case x509::ReasonCode::kUnspecified:
    case x509::ReasonCode::kKeyCompromise:
    case x509::ReasonCode::kCaCompromise:
    case x509::ReasonCode::kAaCompromise:
      return true;
    default:
      return false;
  }
}

CrlSet GenerateCrlSet(const std::vector<CrlSource>& sources,
                      const GeneratorConfig& config, int sequence) {
  CrlSet set;
  set.sequence = sequence;

  // Rough running size estimate: parent key (32B + length) once per parent,
  // plus each serial blob. Refined against Serialize() at the end.
  std::size_t estimated = 8;
  for (const CrlSource& source : sources) {
    if (!source.crawled || source.crl == nullptr) continue;
    if (source.crl->tbs.entries.size() > config.max_entries_per_crl) continue;

    std::size_t crl_bytes = 0;
    std::vector<const crl::CrlEntry*> eligible;
    for (const crl::CrlEntry& entry : source.crl->tbs.entries) {
      if (config.filter_reason_codes && !IsCrlSetReasonCode(entry.reason))
        continue;
      eligible.push_back(&entry);
      crl_bytes += entry.serial.size() + 4;
    }
    if (eligible.empty()) continue;
    if (!set.CoversParent(source.parent_spki_sha256))
      crl_bytes += source.parent_spki_sha256.size() + 8;

    if (estimated + crl_bytes > config.max_bytes) continue;  // drop whole CRL
    estimated += crl_bytes;
    for (const crl::CrlEntry* entry : eligible)
      set.AddEntry(source.parent_spki_sha256, entry->serial);
  }
  return set;
}

}  // namespace rev::crlset
