// Golomb Compressed Set: the space-optimal alternative Langley suggested
// for revocation dissemination (§7.4). Keys are hashed into [0, n/p); the
// sorted hash values are delta-encoded with Golomb–Rice coding, approaching
// the information-theoretic lower bound (~1.44x fewer bits than a Bloom
// filter at the same false-positive rate).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace rev::crlset {

class GolombCompressedSet {
 public:
  // Builds from keys at target false-positive rate 2^-log2_fpr.
  static GolombCompressedSet Build(const std::vector<Bytes>& keys,
                                   int log2_inverse_fpr);

  bool MayContain(BytesView key) const;

  std::size_t SizeBytes() const { return data_.size(); }
  std::size_t NumKeys() const { return num_keys_; }

 private:
  std::uint64_t HashToRange(BytesView key) const;

  int rice_param_ = 0;        // Rice parameter (== log2_inverse_fpr)
  std::size_t num_keys_ = 0;
  std::uint64_t range_ = 0;   // hash range = num_keys * 2^rice_param
  Bytes data_;                // bit-packed Golomb–Rice deltas
};

}  // namespace rev::crlset
