// The CRLSet generation pipeline, reproducing the documented Google process
// (§7.1): an internal list of crawled CRLs is folded into a size-capped set,
// dropping CRLs with too many entries and keeping only revocations whose
// reason code is one of the "CRLSet reason codes" (no reason code,
// Unspecified, KeyCompromise, CACompromise, AACompromise).
#pragma once

#include <vector>

#include "crl/crl.h"
#include "crlset/crlset.h"
#include "util/bytes.h"

namespace rev::crlset {

// One crawled CRL with the SPKI hash of its issuing ("parent") certificate.
struct CrlSource {
  Bytes parent_spki_sha256;
  const crl::Crl* crl = nullptr;
  // Whether Google's crawler follows this CRL at all; the paper finds only
  // 10.5% of CRLs ever contribute entries.
  bool crawled = true;
};

struct GeneratorConfig {
  // "the size of the CRLSet file is capped at 250KB".
  std::size_t max_bytes = 250 * 1024;
  // "if a CRL has too many entries it will be dropped from the CRLSet".
  std::size_t max_entries_per_crl = 10'000;
  // Apply the reason-code filter.
  bool filter_reason_codes = true;
};

// True for the reason codes eligible for CRLSet inclusion.
bool IsCrlSetReasonCode(x509::ReasonCode reason);

// Builds a CRLSet from the crawled CRLs. CRLs are folded in input order;
// once the serialized size would exceed the cap, later CRLs are dropped
// entirely (coarse but faithful to the observed partial coverage).
CrlSet GenerateCrlSet(const std::vector<CrlSource>& sources,
                      const GeneratorConfig& config, int sequence);

}  // namespace rev::crlset
