// Mozilla's OneCRL (§7 footnote 24): a pushed blocklist like CRLSets but
// restricted to *intermediate* certificates — "as of this writing, there
// are only 8 revoked certificates on the list". Entries are keyed by
// (issuer name, serial), matching how Mozilla distributes them.
#pragma once

#include <set>
#include <utility>

#include "util/bytes.h"
#include "x509/certificate.h"
#include "x509/name.h"

namespace rev::crlset {

class OneCrl {
 public:
  void AddEntry(const x509::Name& issuer, const x509::Serial& serial);

  bool IsRevoked(const x509::Name& issuer, const x509::Serial& serial) const;

  // Convenience: checks a parsed CA certificate.
  bool Blocks(const x509::Certificate& intermediate) const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::set<std::pair<Bytes, x509::Serial>> entries_;  // (issuer DER, serial)
};

}  // namespace rev::crlset
