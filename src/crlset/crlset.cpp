#include "crlset/crlset.h"

namespace rev::crlset {

namespace {

void PutU32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool GetU32(BytesView data, std::size_t& pos, std::uint32_t* v) {
  if (pos + 4 > data.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v = (*v << 8) | data[pos++];
  return true;
}

void PutBlob(Bytes& out, BytesView blob) {
  PutU32(out, static_cast<std::uint32_t>(blob.size()));
  Append(out, blob);
}

bool GetBlob(BytesView data, std::size_t& pos, Bytes* blob) {
  std::uint32_t len;
  if (!GetU32(data, pos, &len) || pos + len > data.size()) return false;
  blob->assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
               data.begin() + static_cast<std::ptrdiff_t>(pos + len));
  pos += len;
  return true;
}

}  // namespace

void CrlSet::AddEntry(const Bytes& parent_spki_sha256,
                      const x509::Serial& serial) {
  parents_[parent_spki_sha256].insert(serial);
}

void CrlSet::AddBlockedSpki(const Bytes& spki_sha256) {
  blocked_spkis_.insert(spki_sha256);
}

bool CrlSet::CoversParent(const Bytes& parent_spki_sha256) const {
  return parents_.contains(parent_spki_sha256);
}

bool CrlSet::IsRevoked(const Bytes& parent_spki_sha256,
                       const x509::Serial& serial) const {
  auto it = parents_.find(parent_spki_sha256);
  return it != parents_.end() && it->second.contains(serial);
}

bool CrlSet::IsBlockedSpki(const Bytes& spki_sha256) const {
  return blocked_spkis_.contains(spki_sha256);
}

std::size_t CrlSet::NumEntries() const {
  std::size_t n = 0;
  for (const auto& [parent, serials] : parents_) n += serials.size();
  return n;
}

std::size_t CrlSet::SerializedSize() const {
  // Mirrors Serialize() field-for-field: u32 sequence, u32 parent count,
  // per parent a length-prefixed blob + u32 serial count + length-prefixed
  // serials, then u32 blocked count + length-prefixed SPKIs.
  std::size_t size = 4 + 4;
  for (const auto& [parent, serials] : parents_) {
    size += 4 + parent.size() + 4;
    for (const x509::Serial& serial : serials) size += 4 + serial.size();
  }
  size += 4;
  for (const Bytes& spki : blocked_spkis_) size += 4 + spki.size();
  return size;
}

Bytes CrlSet::Serialize() const {
  Bytes out;
  PutU32(out, static_cast<std::uint32_t>(sequence));
  PutU32(out, static_cast<std::uint32_t>(parents_.size()));
  for (const auto& [parent, serials] : parents_) {
    PutBlob(out, parent);
    PutU32(out, static_cast<std::uint32_t>(serials.size()));
    for (const x509::Serial& serial : serials) PutBlob(out, serial);
  }
  PutU32(out, static_cast<std::uint32_t>(blocked_spkis_.size()));
  for (const Bytes& spki : blocked_spkis_) PutBlob(out, spki);
  return out;
}

std::optional<CrlSet> CrlSet::Deserialize(BytesView data) {
  CrlSet set;
  std::size_t pos = 0;
  std::uint32_t sequence, num_parents;
  if (!GetU32(data, pos, &sequence) || !GetU32(data, pos, &num_parents))
    return std::nullopt;
  set.sequence = static_cast<int>(sequence);
  for (std::uint32_t i = 0; i < num_parents; ++i) {
    Bytes parent;
    std::uint32_t num_serials;
    if (!GetBlob(data, pos, &parent) || !GetU32(data, pos, &num_serials))
      return std::nullopt;
    auto& serials = set.parents_[parent];
    for (std::uint32_t j = 0; j < num_serials; ++j) {
      Bytes serial;
      if (!GetBlob(data, pos, &serial)) return std::nullopt;
      serials.insert(std::move(serial));
    }
  }
  std::uint32_t num_blocked;
  if (!GetU32(data, pos, &num_blocked)) return std::nullopt;
  for (std::uint32_t i = 0; i < num_blocked; ++i) {
    Bytes spki;
    if (!GetBlob(data, pos, &spki)) return std::nullopt;
    set.blocked_spkis_.insert(std::move(spki));
  }
  if (pos != data.size()) return std::nullopt;
  return set;
}

}  // namespace rev::crlset
