#include "tls/handshake.h"

namespace rev::tls {

bool TlsServer::StapleAcceptable(BytesView staple_der) const {
  if (config_.staple_any_status) return true;
  auto parsed = ocsp::ParseOcspResponse(staple_der);
  if (!parsed || parsed->status != ocsp::ResponseStatus::kSuccessful)
    return false;
  return parsed->single.status == ocsp::CertStatus::kGood;
}

Bytes TlsServer::LeafStaple(util::Timestamp now) {
  if (!config_.fetch_leaf_staple) return {};

  if (config_.staple_requires_cache) {
    if (!cached_staple_.empty() && now < cached_staple_expiry_) {
      return cached_staple_;
    }
    // Cache miss: the handshake goes out without a staple, and the fetch
    // completes afterwards — model by populating the cache now for the
    // *next* connection. With background traffic, an earlier visitor
    // already triggered the fetch, so this connection is served too.
    Bytes fresh = config_.fetch_leaf_staple(now);
    if (!fresh.empty() && StapleAcceptable(fresh)) {
      auto parsed = ocsp::ParseOcspResponse(fresh);
      cached_staple_ = std::move(fresh);
      cached_staple_expiry_ = (parsed && parsed->single.next_update != 0)
                                  ? parsed->single.next_update
                                  : now + util::kSecondsPerDay;
      if (config_.background_traffic) return cached_staple_;
    }
    return {};
  }

  Bytes fresh = config_.fetch_leaf_staple(now);
  if (fresh.empty() || !StapleAcceptable(fresh)) return {};
  return fresh;
}

ServerHello TlsServer::Handshake(const ClientHello& hello,
                                 util::Timestamp now) {
  ServerHello out;
  out.chain_der = config_.chain_der;

  if (!config_.stapling_enabled) return out;

  if (hello.status_request_v2 && config_.multi_staple_enabled &&
      !config_.fetch_chain_staples.empty()) {
    out.stapled_ocsp_multi.reserve(config_.fetch_chain_staples.size());
    for (const StapleFetcher& fetch : config_.fetch_chain_staples) {
      Bytes staple = fetch ? fetch(now) : Bytes{};
      if (!staple.empty() && !StapleAcceptable(staple)) staple.clear();
      out.stapled_ocsp_multi.push_back(std::move(staple));
    }
    if (!out.stapled_ocsp_multi.empty())
      out.stapled_ocsp = out.stapled_ocsp_multi.front();
    return out;
  }

  if (hello.status_request) out.stapled_ocsp = LeafStaple(now);
  return out;
}

}  // namespace rev::tls
