// A simplified TLS handshake: certificate-chain delivery plus the OCSP
// stapling extensions. Key exchange and record encryption are out of scope —
// the paper's measurements concern only the certificate/status machinery.
//
// Server stapling behavior is modeled after real deployments (§4.3, §6.1):
//  - status_request (RFC 6066): single staple for the leaf;
//  - status_request_v2 (RFC 6961): staples for the whole chain (the
//    "Multiple OCSP Staple Extension" the paper recommends adopting);
//  - nginx-like cache behavior: a server with stapling enabled but no fresh
//    cached staple sends none and fetches one afterwards, so the *next*
//    handshake carries it (this is why single-connection scans underestimate
//    stapling support by ~18%, Fig. 3);
//  - by default nginx refuses to staple a response whose status is revoked
//    or unknown; the paper patched that out for its test suite, and the
//    `staple_any_status` switch models both.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ocsp/ocsp.h"
#include "util/bytes.h"
#include "util/time.h"

namespace rev::tls {

struct ClientHello {
  bool status_request = false;     // request a leaf staple
  bool status_request_v2 = false;  // request staples for the full chain
};

struct ServerHello {
  // DER certificates, leaf first, excluding the root.
  std::vector<Bytes> chain_der;
  // Leaf OCSP staple (DER OCSPResponse); empty when not stapled.
  Bytes stapled_ocsp;
  // RFC 6961: staple per chain element (parallel to chain_der); empty when
  // the extension is unsupported or not requested.
  std::vector<Bytes> stapled_ocsp_multi;
};

// Fetches a fresh OCSP response for one chain position (wired by the CA /
// scan layers to the right responder). Returns the DER response.
using StapleFetcher = std::function<Bytes(util::Timestamp now)>;

class TlsServer {
 public:
  struct Config {
    std::vector<Bytes> chain_der;  // leaf first
    bool stapling_enabled = false;
    bool multi_staple_enabled = false;
    // When true (nginx-like), only staple when a fresh cached response
    // exists; a cache miss triggers an async fetch that lands after the
    // handshake completes.
    bool staple_requires_cache = true;
    // Models other clients' traffic keeping the staple cache warm: on a
    // cache miss the fetch is treated as having completed before this
    // handshake (a previous visitor triggered it). Only meaningful with
    // staple_requires_cache.
    bool background_traffic = false;
    // When false (default nginx), responses with status revoked/unknown are
    // not stapled. True matches the paper's patched server.
    bool staple_any_status = false;
    StapleFetcher fetch_leaf_staple;
    std::vector<StapleFetcher> fetch_chain_staples;  // parallel to chain_der
  };

  TlsServer() = default;
  explicit TlsServer(Config config) : config_(std::move(config)) {}

  ServerHello Handshake(const ClientHello& hello, util::Timestamp now);

  const Config& config() const { return config_; }

 private:
  // Returns the staple to send for the leaf (possibly empty), honoring the
  // cache and status rules.
  Bytes LeafStaple(util::Timestamp now);

  bool StapleAcceptable(BytesView staple_der) const;

  Config config_;
  Bytes cached_staple_;
  util::Timestamp cached_staple_expiry_ = 0;
  bool fetch_pending_ = false;
};

}  // namespace rev::tls
