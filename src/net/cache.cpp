#include "net/cache.h"

namespace rev::net {

CachingClient::Result CachingClient::Get(std::string_view url,
                                         util::Timestamp now,
                                         double timeout_seconds) {
  Result result;
  auto it = cache_.find(url);
  if (it != cache_.end() && now < it->second.expires) {
    ++hits_;
    result.from_cache = true;
    result.fetch.error = FetchError::kOk;
    result.fetch.response = it->second.response;
    result.fetch.elapsed_seconds = 0;
    return result;
  }
  ++misses_;
  result.fetch = net_->Get(url, now, timeout_seconds);
  if (result.fetch.ok() && result.fetch.response.max_age > 0) {
    cache_[std::string(url)] =
        Entry{result.fetch.response, now + result.fetch.response.max_age};
  }
  return result;
}

}  // namespace rev::net
