#include "net/cache.h"

namespace rev::net {

namespace {

std::string CacheMetricName(const char* metric, std::uint64_t instance) {
  return std::string("net.cache.") + metric + "{client=" +
         std::to_string(instance) + "}";
}

}  // namespace

CachingClient::CachingClient(SimNet* net)
    : CachingClient(net, obs::NextInstanceId()) {}

CachingClient::CachingClient(SimNet* net, std::uint64_t instance)
    : net_(net),
      hits_(obs::MetricsRegistry::Global().GetCounter(
          CacheMetricName("hits", instance))),
      misses_(obs::MetricsRegistry::Global().GetCounter(
          CacheMetricName("misses", instance))),
      evictions_(obs::MetricsRegistry::Global().GetCounter(
          CacheMetricName("evictions", instance))) {}

CachingClient::Result CachingClient::Get(std::string_view url,
                                         util::Timestamp now,
                                         double timeout_seconds) {
  return Get(url, now, RetryPolicy::None(), nullptr, timeout_seconds);
}

CachingClient::Result CachingClient::Get(std::string_view url,
                                         util::Timestamp now,
                                         const RetryPolicy& retry,
                                         const ResponseValidator& validate,
                                         double timeout_seconds) {
  Result result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(url);  // heterogeneous: no temporary string
    if (it != cache_.end()) {
      if (now < it->second.expires) {
        hits_.Increment();
        result.from_cache = true;
        result.fetch.error = FetchError::kOk;
        result.fetch.response = it->second.response;
        result.fetch.elapsed_seconds = 0;
        return result;
      }
      // Stale: erase now rather than leaving a dead entry behind (the
      // refetch below may fail or come back uncacheable).
      cache_.erase(it);
      evictions_.Increment();
    }
    // One logical fetch = one miss: the retry loop below may hit the
    // network several times, but the counter moves exactly once.
    misses_.Increment();
  }
  // Network I/O happens outside the lock; SimNet serializes internally.
  RetryResult fetched =
      GetWithRetry(*net_, url, now, retry, timeout_seconds, validate);
  result.attempts = fetched.attempts;
  result.fetch = std::move(fetched.fetch);
  // The caller accounts the whole sequence (attempts + backoff) as this
  // fetch's simulated cost; per-attempt detail stays in the retry layer.
  result.fetch.elapsed_seconds = fetched.total_elapsed_seconds;
  result.fetch.bytes_transferred = fetched.total_bytes;
  if (result.fetch.ok() && result.fetch.response.max_age > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    // The std::string is built only when actually storing a new entry.
    cache_.insert_or_assign(
        std::string(url),
        Entry{result.fetch.response, now + result.fetch.response.max_age});
  }
  return result;
}

std::size_t CachingClient::PruneExpired(util::Timestamp now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t removed = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (now >= it->second.expires) {
      it = cache_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  // Monotonic accounting: a sweep only ever *adds* to the eviction tally,
  // exactly like the lazy erase-on-access path.
  evictions_.Add(removed);
  return removed;
}

}  // namespace rev::net
