#include "net/url.h"

namespace rev::net {

std::optional<Url> ParseUrl(std::string_view url) {
  const std::size_t scheme_end = url.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0)
    return std::nullopt;
  Url out;
  out.scheme = std::string(url.substr(0, scheme_end));
  for (char& c : out.scheme)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  if (out.scheme != "http" && out.scheme != "https") return std::nullopt;

  std::string_view rest = url.substr(scheme_end + 3);
  const std::size_t path_start = rest.find('/');
  if (path_start == std::string_view::npos) {
    out.host = std::string(rest);
    out.path = "/";
  } else {
    out.host = std::string(rest.substr(0, path_start));
    out.path = std::string(rest.substr(path_start));
  }
  if (out.host.empty()) return std::nullopt;
  return out;
}

bool IsFetchable(std::string_view url) {
  return ParseUrl(url).has_value();
}

}  // namespace rev::net
