#include "net/retry.h"

#include <algorithm>
#include <cmath>

#include "net/url.h"
#include "obs/distrace.h"
#include "obs/metrics.h"

namespace rev::net {

namespace {

// splitmix64 finalizer, the stateless mixer used across the fault stack.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double UnitFromHash(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Span-id salts: each retry attempt (and each backoff wait) gets a
// distinct child of the caller's span, so the exchange spans SimNet
// records underneath never collide across attempts.
constexpr std::uint64_t kAttemptSalt = 0xA77E3B9Dull;
constexpr std::uint64_t kBackoffSalt = 0xBAC0FF5Dull;

struct RetryMetrics {
  obs::Counter& retries;
  obs::Counter& gave_up;
  obs::Counter& corrupt_bodies;
  obs::Histogram& backoff_ns;

  static RetryMetrics& Get() {
    static RetryMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new RetryMetrics{
          registry.GetCounter("net.retries"),
          registry.GetCounter("net.fetch_gave_up"),
          registry.GetCounter("net.corrupt_bodies"),
          registry.GetHistogram("net.backoff_delay_ns"),
      };
    }();
    return *metrics;
  }
};

}  // namespace

double BackoffDelay(const RetryPolicy& policy, std::string_view key,
                    int attempt) {
  if (attempt <= 0) return 0;
  if (policy.initial_backoff_seconds <= 0) return 0;
  // jitter = 1 would make the window [0, base] and the non-decreasing
  // invariant unsatisfiable by any finite multiplier; 0.9 keeps the
  // required multiplier at most 10.
  const double jitter = std::clamp(policy.jitter, 0.0, 0.9);
  // The low edge of attempt k+1's window must clear the high edge of
  // attempt k's: multiplier * (1 - jitter) >= 1. A config below that bound
  // would silently produce *decreasing* backoff, so clamp up to the
  // smallest compliant multiplier instead of honoring it.
  const double multiplier =
      std::max({policy.backoff_multiplier, 1.0, 1.0 / (1.0 - jitter)});

  double base = policy.initial_backoff_seconds;
  for (int i = 1; i < attempt; ++i) {
    // Once even the low edge of the jitter window clears the cap, every
    // later delay is exactly the cap — stop multiplying (and never
    // overflow).
    if (base * (1.0 - jitter) >= policy.max_backoff_seconds)
      return policy.max_backoff_seconds;
    base *= multiplier;
  }

  std::uint64_t h = Mix64(policy.seed ^ 0x5E77ull);
  for (char c : key) h = Mix64(h ^ static_cast<std::uint8_t>(c));
  h = Mix64(h ^ static_cast<std::uint64_t>(attempt));
  const double jittered = base * (1.0 - jitter * UnitFromHash(h));
  return std::min(jittered, policy.max_backoff_seconds);
}

bool IsRetryable(const FetchResult& result) {
  switch (result.error) {
    case FetchError::kTimeout:
    case FetchError::kConnectionRefused:
    case FetchError::kCorruptBody:
      return true;
    case FetchError::kDnsFailure:
      return false;  // NXDOMAIN is definitive
    case FetchError::kOk:
      break;
  }
  // 5xx is transient in general, but 501 Not Implemented and 505 HTTP
  // Version Not Supported are the server saying "this request shape will
  // never work here" — retrying the identical request cannot help, so they
  // are terminal like 4xx (tests/net_test.cpp pins both).
  const int status = result.response.status;
  if (status == 501 || status == 505) return false;
  return status >= 500;
}

RetryResult FetchWithRetry(SimNet& net, const HttpRequest& request,
                           util::Timestamp now, const RetryPolicy& policy,
                           double timeout_seconds,
                           const ResponseValidator& validate) {
  RetryResult out;
  RetryMetrics& metrics = RetryMetrics::Get();
  const std::string key = request.host + request.path;
  const int max_attempts = std::max(1, policy.max_attempts);

  obs::DistTraceCollector& collector = obs::DistTraceCollector::Global();
  obs::SpanContext parent;
  bool traced = false;
  if (collector.enabled()) {
    const auto it = request.headers.find(obs::kTraceparentHeader);
    traced = it != request.headers.end() &&
             obs::ParseTraceparent(it->second, &parent);
  }
  HttpRequest traced_request;  // copied once; header rewritten per attempt
  if (traced) traced_request = request;

  double elapsed = 0;
  std::int64_t pending_retry_after = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    double wait = 0;
    if (attempt > 0) {
      // A 503's Retry-After is a lower bound on the wait, never a
      // replacement for the (possibly longer) computed backoff.
      wait = std::max(BackoffDelay(policy, key, attempt),
                      static_cast<double>(pending_retry_after));
      if (traced && wait > 0) {
        obs::DistSpan span;
        span.trace = parent.trace;
        span.span = obs::DeriveSpanId(
            parent, kBackoffSalt + static_cast<std::uint64_t>(attempt));
        span.parent = parent.span;
        span.name = "net.backoff";
        span.node = "client";
        span.kind = obs::SpanKind::kInternal;
        span.start_ns = obs::VirtualNs(now, elapsed);
        span.end_ns = obs::VirtualNs(now, elapsed + wait);
        collector.Record(span);
      }
      elapsed += wait;
      out.backoff_seconds += wait;
      metrics.retries.Increment();
      metrics.backoff_ns.RecordSeconds(wait);
    }

    // Each attempt happens on the simulated clock at `now` plus everything
    // spent so far, so fault windows and flap phases see honest time.
    const util::Timestamp at = now + static_cast<util::Timestamp>(elapsed);
    const HttpRequest* to_send = &request;
    obs::SpanContext attempt_ctx;
    if (traced) {
      // Each attempt is a distinct child span; SimNet's exchange span
      // parents under it, so retries never share exchange span ids.
      attempt_ctx = {parent.trace,
                     obs::DeriveSpanId(
                         parent, kAttemptSalt +
                                     static_cast<std::uint64_t>(attempt))};
      traced_request.headers[obs::kTraceparentHeader] =
          obs::FormatTraceparent(attempt_ctx);
      to_send = &traced_request;
    }
    FetchResult fetch = net.Fetch(*to_send, at, timeout_seconds);
    if (fetch.ok() && validate && !validate(fetch.response)) {
      fetch.error = FetchError::kCorruptBody;
      metrics.corrupt_bodies.Increment();
    }
    if (traced) {
      obs::DistSpan span;
      span.trace = parent.trace;
      span.span = attempt_ctx.span;
      span.parent = parent.span;
      span.name = "net.attempt";
      span.node = "client";
      span.kind = obs::SpanKind::kInternal;
      span.status = fetch.error == FetchError::kOk
                        ? fetch.response.status
                        : -1 - static_cast<std::int32_t>(fetch.error);
      span.start_ns = obs::VirtualNs(at, 0);
      span.end_ns = obs::VirtualNs(at, fetch.elapsed_seconds);
      collector.Record(span);
    }
    elapsed += fetch.elapsed_seconds;
    out.total_bytes += fetch.bytes_transferred;
    out.attempts = attempt + 1;
    out.schedule.push_back({at, wait, fetch.elapsed_seconds, fetch.error,
                            fetch.response.status, fetch.response.retry_after});

    pending_retry_after =
        fetch.response.status == 503 ? fetch.response.retry_after : 0;
    const bool retryable = IsRetryable(fetch);
    out.fetch = std::move(fetch);
    if (!retryable) break;  // success or a definitive failure
    if (attempt + 1 == max_attempts) {
      out.gave_up = true;
      metrics.gave_up.Increment();
    }
  }

  out.total_elapsed_seconds = elapsed;
  out.finished_at = now + static_cast<util::Timestamp>(elapsed);
  return out;
}

RetryResult GetWithRetry(SimNet& net, std::string_view url,
                         util::Timestamp now, const RetryPolicy& policy,
                         double timeout_seconds,
                         const ResponseValidator& validate) {
  auto parsed = ParseUrl(url);
  if (!parsed) {
    RetryResult out;
    out.fetch.error = FetchError::kDnsFailure;
    out.finished_at = now;
    return out;
  }
  HttpRequest request;
  request.method = "GET";
  request.host = parsed->host;
  request.path = parsed->path;
  return FetchWithRetry(net, request, now, policy, timeout_seconds, validate);
}

RetryResult PostWithRetry(SimNet& net, std::string_view url, BytesView body,
                          util::Timestamp now, const RetryPolicy& policy,
                          double timeout_seconds,
                          const ResponseValidator& validate) {
  auto parsed = ParseUrl(url);
  if (!parsed) {
    RetryResult out;
    out.fetch.error = FetchError::kDnsFailure;
    out.finished_at = now;
    return out;
  }
  HttpRequest request;
  request.method = "POST";
  request.host = parsed->host;
  request.path = parsed->path;
  request.body.assign(body.begin(), body.end());
  return FetchWithRetry(net, request, now, policy, timeout_seconds, validate);
}

}  // namespace rev::net
