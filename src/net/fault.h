// Deterministic fault injection for the simulated network.
//
// The paper documents a PKI whose revocation endpoints time out, serve
// stale data, or disappear outright (§3.2, §5); follow-up measurements
// (Korzhitskii et al., "Revocation Statuses on the Internet") confirm that
// endpoint availability is the binding constraint on end-to-end revocation.
// SimNet's static knobs (SetDnsFailure/SetUnresponsive) can model a host
// that is *permanently* broken; a FaultPlan models the messy middle — the
// intermittent timeouts, 5xx bursts, flapping, corruption, and latency
// storms that a robust fetch stack must ride out.
//
// Determinism is the design center: every fault decision is a pure
// function of (plan seed, rule index, request URL, virtual timestamp).
// There is no hidden RNG state, so the same storm replays bit-identically
// no matter how many threads issue the fetches or in which order — the
// property the chaos suite (tests/chaos_test.cpp) pins down. Replay any
// storm from its seed; see docs/fault-injection.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "net/simnet.h"
#include "util/time.h"

namespace rev::net {

// What a rule does to a matching exchange.
enum class FaultKind : std::uint8_t {
  kTimeout,    // request hangs until the caller's timeout
  kOutage,     // connection refused (fast failure, host down)
  kFlap,       // square wave: up for up_seconds, refused for down_seconds
  kHttpError,  // replace the response with an HTTP error (5xx bursts)
  kTruncate,   // deliver only a prefix of the response body
  kCorrupt,    // flip bytes in the response body
  kLatency,    // multiply the exchange's elapsed time
};
inline constexpr std::size_t kNumFaultKinds = 7;

const char* FaultKindName(FaultKind kind);

// One entry in the schedule. A rule matches an exchange when its target
// matches (see below) and `now` falls inside [start, end); inside the
// window it fires with `probability` per exchange (kFlap instead fires
// whenever the square wave is in its down phase, scaled by probability).
struct FaultRule {
  // "host" (exact) or "host/path-prefix". Empty matches every exchange.
  std::string target;
  FaultKind kind = FaultKind::kTimeout;
  double probability = 1.0;
  util::Timestamp start = 0;
  util::Timestamp end = std::numeric_limits<util::Timestamp>::max();

  // kFlap: the wave is up for up_seconds then down for down_seconds,
  // phase-locked to the epoch (so it is a function of `now`, not of call
  // history).
  std::int64_t up_seconds = 300;
  std::int64_t down_seconds = 300;

  // kHttpError: the substituted status, and the Retry-After hint attached
  // when the status is 503.
  int http_status = 503;
  std::int64_t retry_after = 0;

  // kTruncate: fraction of the body kept (the wire cut mid-transfer).
  double keep_fraction = 0.5;

  // kCorrupt: how many body bytes get flipped.
  std::size_t corrupt_bytes = 4;

  // kLatency: multiplier on elapsed_seconds (may push past the timeout).
  double latency_factor = 10.0;
};

// A seeded, time-indexed schedule of faults. Attach to a SimNet with
// SimNet::SetFaultPlan(); thereafter every exchange consults the plan.
// Thread-safe: rules are immutable once serving starts (add them before
// attaching), decisions are stateless, and the injection tallies are
// atomics whose totals are deterministic because the *set* of (url, now)
// exchanges is.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  void AddRule(FaultRule rule) { rules_.push_back(std::move(rule)); }
  std::size_t RuleCount() const { return rules_.size(); }
  std::uint64_t seed() const { return seed_; }

  // Pre-exchange faults (timeout / outage / flap-down). Returns true when
  // the exchange is consumed: *result holds the failure, the handler never
  // runs. `key` is "host" + "path".
  bool ApplyBefore(std::string_view host, std::string_view path,
                   util::Timestamp now, double timeout_seconds,
                   double rtt_seconds, FetchResult* result);

  // Post-exchange faults (5xx substitution, truncation, corruption,
  // latency inflation) applied to a handler-produced response. The caller
  // re-checks its timeout afterwards (latency inflation can cross it).
  void ApplyAfter(std::string_view host, std::string_view path,
                  util::Timestamp now, FetchResult* result);

  // Injection tallies, per kind and total. Deterministic for a
  // deterministic workload (chaos_test compares them across thread
  // counts).
  std::uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t total_injected() const;

 private:
  // True when `rule` (at index `index`) fires for this exchange.
  bool Fires(const FaultRule& rule, std::size_t index, std::string_view host,
             std::string_view path, util::Timestamp now) const;
  void Count(FaultKind kind);

  std::uint64_t seed_;
  std::vector<FaultRule> rules_;
  std::array<std::atomic<std::uint64_t>, kNumFaultKinds> injected_{};
};

}  // namespace rev::net
