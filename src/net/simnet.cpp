#include "net/simnet.h"

#include "net/fault.h"
#include "obs/distrace.h"
#include "obs/metrics.h"

namespace rev::net {

namespace {

// Span-id salt for the wire exchange itself; the caller's per-attempt
// context (FetchWithRetry) keeps retries of one request distinct.
constexpr std::uint64_t kExchangeSalt = 0xE8C4A27Dull;

// Every fetch in the process lands in one of four status classes, plus a
// bytes counter — the fleet's bandwidth finally visible in one place.
struct FetchMetrics {
  obs::Counter& class_2xx;
  obs::Counter& class_4xx;
  obs::Counter& class_5xx;
  obs::Counter& class_err;
  obs::Counter& bytes;

  static FetchMetrics& Get() {
    // Leaked: counters outlive static teardown (registry semantics).
    static FetchMetrics* metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new FetchMetrics{reg.GetCounter("net.fetch{class=2xx}"),
                              reg.GetCounter("net.fetch{class=4xx}"),
                              reg.GetCounter("net.fetch{class=5xx}"),
                              reg.GetCounter("net.fetch{class=err}"),
                              reg.GetCounter("net.fetch.bytes")};
    }();
    return *metrics;
  }
};

void CountFetch(const FetchResult& result) {
  FetchMetrics& m = FetchMetrics::Get();
  if (result.error != FetchError::kOk) {
    m.class_err.Increment();
  } else {
    switch (result.response.status / 100) {
      case 2: m.class_2xx.Increment(); break;
      case 4: m.class_4xx.Increment(); break;
      case 5: m.class_5xx.Increment(); break;
      default: m.class_err.Increment(); break;
    }
  }
  if (result.bytes_transferred > 0) m.bytes.Add(result.bytes_transferred);
}

}  // namespace

const char* FetchErrorName(FetchError e) {
  switch (e) {
    case FetchError::kOk: return "ok";
    case FetchError::kDnsFailure: return "dns-failure";
    case FetchError::kConnectionRefused: return "connection-refused";
    case FetchError::kTimeout: return "timeout";
    case FetchError::kCorruptBody: return "corrupt-body";
  }
  return "?";
}

void SimNet::AddHost(std::string_view hostname, HttpHandler handler,
                     HostProfile profile) {
  std::lock_guard<std::mutex> lock(mu_);
  Host& host = hosts_[std::string(hostname)];
  host.handler = std::move(handler);
  host.profile = profile;
}

void SimNet::RemoveHost(std::string_view hostname) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hosts_.find(hostname);
  if (it != hosts_.end()) hosts_.erase(it);
}

bool SimNet::HasHost(std::string_view hostname) const {
  std::lock_guard<std::mutex> lock(mu_);
  return hosts_.find(hostname) != hosts_.end();
}

void SimNet::SetDnsFailure(std::string_view hostname, bool fail) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hosts_.find(hostname);
  if (it != hosts_.end()) it->second.dns_failure = fail;
}

void SimNet::SetUnresponsive(std::string_view hostname, bool unresponsive) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hosts_.find(hostname);
  if (it != hosts_.end()) it->second.unresponsive = unresponsive;
}

void SimNet::SetFaultPlan(FaultPlan* plan) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_plan_ = plan;
}

FaultPlan* SimNet::fault_plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_plan_;
}

FetchResult SimNet::Fetch(const HttpRequest& request, util::Timestamp now,
                          double timeout_seconds) {
  obs::DistTraceCollector& collector = obs::DistTraceCollector::Global();
  obs::SpanContext parent;
  bool traced = false;
  if (collector.enabled()) {
    const auto it = request.headers.find(obs::kTraceparentHeader);
    traced = it != request.headers.end() &&
             obs::ParseTraceparent(it->second, &parent);
  }

  FetchResult result;
  if (traced) {
    // The exchange gets its own span id; the handler sees *that* context,
    // so server-side spans parent under the hop that carried them.
    const obs::SpanContext exchange{parent.trace,
                                    obs::DeriveSpanId(parent, kExchangeSalt)};
    HttpRequest forwarded = request;
    forwarded.headers[obs::kTraceparentHeader] =
        obs::FormatTraceparent(exchange);
    result = DoFetch(forwarded, now, timeout_seconds);

    obs::DistSpan span;
    span.trace = parent.trace;
    span.span = exchange.span;
    span.parent = parent.span;
    span.name = "net.exchange";
    span.node = obs::InternName(request.host);
    span.kind = obs::SpanKind::kClient;
    span.status = result.error == FetchError::kOk
                      ? result.response.status
                      : -1 - static_cast<std::int32_t>(result.error);
    span.start_ns = obs::VirtualNs(now, 0);
    span.end_ns = obs::VirtualNs(now, result.elapsed_seconds);
    collector.Record(span);
  } else {
    result = DoFetch(request, now, timeout_seconds);
  }
  CountFetch(result);
  return result;
}

FetchResult SimNet::DoFetch(const HttpRequest& request, util::Timestamp now,
                            double timeout_seconds) {
  // One lock spans the whole exchange: the handler may mutate CA state.
  std::lock_guard<std::mutex> lock(mu_);
  FetchResult result;
  ++total_requests_;

  auto it = hosts_.find(request.host);
  if (it == hosts_.end() || it->second.dns_failure) {
    result.error = FetchError::kDnsFailure;
    // A failed lookup costs roughly one resolver round trip.
    result.elapsed_seconds = 0.050;
    return result;
  }
  const Host& host = it->second;
  if (host.unresponsive) {
    result.error = FetchError::kTimeout;
    result.elapsed_seconds = timeout_seconds;
    return result;
  }
  if (!host.handler) {
    result.error = FetchError::kConnectionRefused;
    result.elapsed_seconds = host.profile.rtt_seconds;
    return result;
  }

  // Pre-exchange faults (timeout/outage/flap-down) consume the request
  // before the handler runs, like a connection that never forms.
  if (fault_plan_ != nullptr &&
      fault_plan_->ApplyBefore(request.host, request.path, now,
                               timeout_seconds, host.profile.rtt_seconds,
                               &result))
    return result;

  result.response = host.handler(request, now);

  // Cost model: DNS (1 RTT) + TCP handshake (1 RTT) + request/response
  // (1 RTT) + transfer time for the response body.
  const double transfer =
      static_cast<double>(result.response.body.size()) * 8.0 /
      host.profile.bandwidth_bps;
  result.elapsed_seconds = 3.0 * host.profile.rtt_seconds + transfer;

  // Post-exchange faults mutate the finished response (5xx substitution,
  // truncation, corruption) and/or inflate elapsed time; the timeout check
  // below therefore sees the inflated value.
  if (fault_plan_ != nullptr)
    fault_plan_->ApplyAfter(request.host, request.path, now, &result);

  const std::size_t wire_bytes =
      request.body.size() + result.response.body.size();
  result.bytes_transferred = wire_bytes;
  total_bytes_ += wire_bytes;

  if (result.elapsed_seconds > timeout_seconds) {
    result.error = FetchError::kTimeout;
    result.elapsed_seconds = timeout_seconds;
  }
  return result;
}

FetchResult SimNet::Get(std::string_view url, util::Timestamp now,
                        double timeout_seconds) {
  auto parsed = ParseUrl(url);
  if (!parsed) {
    FetchResult result;
    result.error = FetchError::kDnsFailure;
    return result;
  }
  HttpRequest request;
  request.method = "GET";
  request.host = parsed->host;
  request.path = parsed->path;
  return Fetch(request, now, timeout_seconds);
}

FetchResult SimNet::Post(std::string_view url, BytesView body,
                         util::Timestamp now, double timeout_seconds) {
  auto parsed = ParseUrl(url);
  if (!parsed) {
    FetchResult result;
    result.error = FetchError::kDnsFailure;
    return result;
  }
  HttpRequest request;
  request.method = "POST";
  request.host = parsed->host;
  request.path = parsed->path;
  request.body.assign(body.begin(), body.end());
  return Fetch(request, now, timeout_seconds);
}

std::uint64_t SimNet::total_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_requests_;
}

std::uint64_t SimNet::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

void SimNet::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  total_requests_ = 0;
  total_bytes_ = 0;
}

}  // namespace rev::net
