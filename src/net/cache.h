// A client-side HTTP cache keyed by URL, honoring the response's max_age.
//
// Browsers cache CRLs and OCSP responses; the paper observes 95% of CRLs
// expire within 24 hours, limiting the bandwidth savings (§5.2). The cache
// makes that dynamic measurable.
#pragma once

#include <map>
#include <string>

#include "net/simnet.h"

namespace rev::net {

class CachingClient {
 public:
  explicit CachingClient(SimNet* net) : net_(net) {}

  struct Result {
    FetchResult fetch;   // elapsed is 0 for cache hits
    bool from_cache = false;
  };

  // GETs the URL, serving from cache when a fresh entry exists.
  Result Get(std::string_view url, util::Timestamp now,
             double timeout_seconds = 10.0);

  // Cache management.
  void Clear() { cache_.clear(); }
  std::size_t EntryCount() const { return cache_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    HttpResponse response;
    util::Timestamp expires = 0;
  };

  SimNet* net_;
  std::map<std::string, Entry, std::less<>> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace rev::net
