// A client-side HTTP cache keyed by URL, honoring the response's max_age.
//
// Browsers cache CRLs and OCSP responses; the paper observes 95% of CRLs
// expire within 24 hours, limiting the bandwidth savings (§5.2). The cache
// makes that dynamic measurable.
//
// Get() is safe to call from multiple threads (the revocation crawler fans
// CRL fetches out across a ThreadPool); lookups use the map's transparent
// comparator so no temporary std::string is built on the hot path, and
// expired entries are erased when encountered so a months-long simulated
// crawl cannot grow the cache without bound.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "net/simnet.h"

namespace rev::net {

class CachingClient {
 public:
  explicit CachingClient(SimNet* net) : net_(net) {}

  struct Result {
    FetchResult fetch;   // elapsed is 0 for cache hits
    bool from_cache = false;
  };

  // GETs the URL, serving from cache when a fresh entry exists. Thread-safe.
  Result Get(std::string_view url, util::Timestamp now,
             double timeout_seconds = 10.0);

  // Erases every entry whose lifetime ended at or before `now`; returns the
  // number removed. Get() already evicts lazily on access — this sweeps
  // entries for URLs that are never requested again.
  std::size_t PruneExpired(util::Timestamp now);

  // Cache management.
  void Clear() { cache_.clear(); }
  std::size_t EntryCount() const { return cache_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    HttpResponse response;
    util::Timestamp expires = 0;
  };

  SimNet* net_;
  std::mutex mu_;  // guards cache_ and the counters during Get()
  std::map<std::string, Entry, std::less<>> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rev::net
