// A client-side HTTP cache keyed by URL, honoring the response's max_age.
//
// Browsers cache CRLs and OCSP responses; the paper observes 95% of CRLs
// expire within 24 hours, limiting the bandwidth savings (§5.2). The cache
// makes that dynamic measurable.
//
// Get() is safe to call from multiple threads (the revocation crawler fans
// CRL fetches out across a ThreadPool); lookups use the map's transparent
// comparator so no temporary std::string is built on the hot path, and
// expired entries are erased when encountered so a months-long simulated
// crawl cannot grow the cache without bound.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "net/retry.h"
#include "net/simnet.h"
#include "obs/metrics.h"

namespace rev::net {

class CachingClient {
 public:
  explicit CachingClient(SimNet* net);

  struct Result {
    FetchResult fetch;   // elapsed is 0 for cache hits; for a retried
                         // fetch it covers the whole sequence (attempt
                         // costs + backoff waits)
    bool from_cache = false;
    int attempts = 0;    // network attempts made (0 for cache hits)
  };

  // GETs the URL, serving from cache when a fresh entry exists. Thread-safe.
  Result Get(std::string_view url, util::Timestamp now,
             double timeout_seconds = 10.0);

  // Retrying form: on a cache miss the fetch runs under `retry` through
  // FetchWithRetry, with `validate` vetting every 200 body before it can
  // be cached (a corrupt CRL must never poison the cache). One *logical*
  // fetch counts exactly one miss no matter how many attempts it took —
  // the hit/miss/eviction counters stay meaningful under storms
  // (tests/net_test.cpp pins this).
  Result Get(std::string_view url, util::Timestamp now,
             const RetryPolicy& retry,
             const ResponseValidator& validate = nullptr,
             double timeout_seconds = 10.0);

  // Erases every entry whose lifetime ended at or before `now`; returns the
  // number removed. Get() already evicts lazily on access — this sweeps
  // entries for URLs that are never requested again.
  std::size_t PruneExpired(util::Timestamp now);

  // Cache management. Clear() drops entries but — like every registry
  // counter — never rewinds the tallies: hits/misses/evictions are
  // monotonic over the client's lifetime (tests/obs_test.cpp pins this).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
  }
  std::size_t EntryCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  std::uint64_t hits() const { return hits_.Value(); }
  std::uint64_t misses() const { return misses_.Value(); }
  std::uint64_t evictions() const { return evictions_.Value(); }

 private:
  CachingClient(SimNet* net, std::uint64_t instance);

  struct Entry {
    HttpResponse response;
    util::Timestamp expires = 0;
  };

  SimNet* net_;
  mutable std::mutex mu_;  // guards cache_; counters are lock-free
  std::map<std::string, Entry, std::less<>> cache_;
  // Registry instruments labelled per instance ("net.cache.hits{client=N}")
  // so several clients in one process keep exact separate tallies while
  // still showing up in the global /metrics exposition.
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
};

}  // namespace rev::net
