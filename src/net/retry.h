// Capped exponential backoff with deterministic jitter for the simulated
// fetch stack.
//
// Every client of SimNet that must survive a FaultPlan storm — the CRL
// crawler, the caching client, the browser's revocation checks, load
// clients of the serving frontend — routes its exchanges through
// FetchWithRetry(). Retries happen on *transient* failures (timeouts,
// refused connections, 5xx, and caller-detected corrupt bodies); NXDOMAIN
// is definitive and never retried, and so are 501 Not Implemented and 505
// HTTP Version Not Supported — 5xx codes that condemn the request shape,
// not the moment. A 503's Retry-After hint is honored as
// a lower bound on the next attempt (the client side of the serve
// frontend's load shedding).
//
// Time stays simulated: each attempt happens at `now + elapsed so far`,
// where elapsed accumulates both the per-attempt exchange costs and the
// backoff waits. Jitter is a pure function of (policy seed, key, attempt),
// so a retried crawl is exactly as reproducible as an unretried one
// (docs/fault-injection.md).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/simnet.h"
#include "util/time.h"

namespace rev::net {

struct RetryPolicy {
  // Total attempts including the first; 1 disables retrying.
  int max_attempts = 3;
  double initial_backoff_seconds = 1.0;
  // Delay grows by this factor per retry. Delays are non-decreasing only
  // when multiplier >= 1/(1 - jitter) — the low edge of the next jitter
  // window must clear the high edge of the current one — so BackoffDelay
  // clamps any smaller configured value up to that bound rather than
  // silently producing decreasing backoff (property_test pins both the
  // guarantee and the clamp).
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 60.0;
  // Delay is drawn from [(1 - jitter) * base, base]; 0 = no jitter.
  // Effective jitter is clamped to [0, 0.9]: at 1.0 the window floor hits
  // zero and no finite multiplier could keep delays ordered.
  double jitter = 0.5;
  // Decorrelates jitter streams between independent clients.
  std::uint64_t seed = 0;

  static RetryPolicy None() {
    RetryPolicy policy;
    policy.max_attempts = 1;
    return policy;
  }
};

// The jittered backoff before retry attempt `attempt` (attempt 1 = first
// retry). Pure function of its inputs, and non-decreasing in `attempt` up
// to the cap for EVERY policy: configs whose multiplier violates
// multiplier >= 1/(1 - jitter) are clamped to the smallest compliant
// multiplier rather than honored.
double BackoffDelay(const RetryPolicy& policy, std::string_view key,
                    int attempt);

// Classifies a completed exchange: true when another attempt could help.
// (DNS failure and 4xx are definitive; timeout/refused/5xx are not.)
bool IsRetryable(const FetchResult& result);

// Caller-supplied body check, run on every 200 response. Returning false
// marks the attempt failed-retryable with FetchError::kCorruptBody — the
// hook by which truncated/bit-flipped CRL and OCSP bodies, detected at
// parse time, re-enter the retry loop.
using ResponseValidator = std::function<bool(const HttpResponse&)>;

struct RetryResult {
  FetchResult fetch;  // the final attempt (elapsed covers that attempt only)
  int attempts = 1;
  // Simulated elapsed over the whole sequence: every attempt's exchange
  // cost plus every backoff wait. This is what callers account as the
  // fetch's cost.
  double total_elapsed_seconds = 0;
  double backoff_seconds = 0;  // the waits alone
  // Wire bytes summed over every attempt (failed attempts included).
  std::uint64_t total_bytes = 0;
  // Virtual time at which the sequence ended (now + total elapsed).
  util::Timestamp finished_at = 0;
  // Retries exhausted while the failure stayed retryable.
  bool gave_up = false;

  // Per-attempt schedule, for tests and honest accounting.
  struct Attempt {
    util::Timestamp at = 0;        // virtual start time of the attempt
    double wait_before = 0;        // backoff slept before it (0 for first)
    double elapsed_seconds = 0;    // the exchange's own cost
    FetchError error = FetchError::kOk;
    int http_status = 0;
    std::int64_t retry_after = 0;  // hint carried by this attempt's response
  };
  std::vector<Attempt> schedule;

  bool ok() const { return fetch.ok(); }
};

// Executes `request` with retries under `policy`. The validator (optional)
// vets every 200 body; `key` for jitter derivation is the request URL.
RetryResult FetchWithRetry(SimNet& net, const HttpRequest& request,
                           util::Timestamp now, const RetryPolicy& policy,
                           double timeout_seconds = 10.0,
                           const ResponseValidator& validate = nullptr);

// GET / POST conveniences mirroring SimNet::Get/Post.
RetryResult GetWithRetry(SimNet& net, std::string_view url,
                         util::Timestamp now, const RetryPolicy& policy,
                         double timeout_seconds = 10.0,
                         const ResponseValidator& validate = nullptr);
RetryResult PostWithRetry(SimNet& net, std::string_view url, BytesView body,
                          util::Timestamp now, const RetryPolicy& policy,
                          double timeout_seconds = 10.0,
                          const ResponseValidator& validate = nullptr);

}  // namespace rev::net
