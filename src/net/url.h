// Minimal URL handling for the simulated HTTP layer.
//
// The paper's crawler only follows http[s]:// URLs and ignores ldap:// and
// file:// distribution points (§3.2); IsFetchable() encodes that rule.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace rev::net {

struct Url {
  std::string scheme;  // "http" or "https"
  std::string host;
  std::string path;    // always starts with '/'

  std::string ToString() const { return scheme + "://" + host + path; }
};

std::optional<Url> ParseUrl(std::string_view url);

// True for http/https URLs pointing at a non-empty host.
bool IsFetchable(std::string_view url);

}  // namespace rev::net
