#include "net/fault.h"

#include "obs/metrics.h"

namespace rev::net {

namespace {

// splitmix64 finalizer: the bit mixer behind util::Rng's seeding, reused
// here as a stateless hash so a decision depends only on its inputs.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t HashString(std::string_view s, std::uint64_t h) {
  for (char c : s) h = Mix64(h ^ static_cast<std::uint8_t>(c));
  return h;
}

// Uniform double in [0, 1) from the decision hash.
double UnitFromHash(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// The per-exchange decision hash: pure function of (seed, rule, url, now).
std::uint64_t DecisionHash(std::uint64_t seed, std::size_t rule_index,
                           std::string_view host, std::string_view path,
                           util::Timestamp now) {
  std::uint64_t h = Mix64(seed ^ (0xA5A5A5A5ull + rule_index));
  h = HashString(host, h);
  h = HashString(path, h);
  return Mix64(h ^ static_cast<std::uint64_t>(now));
}

bool TargetMatches(const FaultRule& rule, std::string_view host,
                   std::string_view path) {
  if (rule.target.empty()) return true;
  if (rule.target == host) return true;
  // "host/path-prefix" form.
  std::string_view target = rule.target;
  if (target.size() <= host.size() || !target.starts_with(host) ||
      target[host.size()] != '/')
    return false;
  return path.starts_with(target.substr(host.size()));
}

obs::Counter& KindCounter(FaultKind kind) {
  // One registry counter per kind, fetched once (instruments are never
  // destroyed, so the references stay valid forever).
  static std::array<obs::Counter*, kNumFaultKinds>* counters = [] {
    auto* array = new std::array<obs::Counter*, kNumFaultKinds>;
    for (std::size_t i = 0; i < kNumFaultKinds; ++i)
      (*array)[i] = &obs::MetricsRegistry::Global().GetCounter(
          std::string("net.faults_injected{kind=") +
          FaultKindName(static_cast<FaultKind>(i)) + "}");
    return array;
  }();
  return *(*counters)[static_cast<std::size_t>(kind)];
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kOutage: return "outage";
    case FaultKind::kFlap: return "flap";
    case FaultKind::kHttpError: return "http-error";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kLatency: return "latency";
  }
  return "?";
}

bool FaultPlan::Fires(const FaultRule& rule, std::size_t index,
                      std::string_view host, std::string_view path,
                      util::Timestamp now) const {
  if (now < rule.start || now >= rule.end) return false;
  if (!TargetMatches(rule, host, path)) return false;
  if (rule.kind == FaultKind::kFlap) {
    const std::int64_t period = rule.up_seconds + rule.down_seconds;
    if (period <= 0) return false;
    std::int64_t phase = now % period;
    if (phase < 0) phase += period;
    if (phase < rule.up_seconds) return false;  // wave is up: no fault
  }
  if (rule.probability >= 1.0) return true;
  if (rule.probability <= 0.0) return false;
  return UnitFromHash(DecisionHash(seed_, index, host, path, now)) <
         rule.probability;
}

void FaultPlan::Count(FaultKind kind) {
  injected_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  KindCounter(kind).Increment();
}

std::uint64_t FaultPlan::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& tally : injected_)
    total += tally.load(std::memory_order_relaxed);
  return total;
}

bool FaultPlan::ApplyBefore(std::string_view host, std::string_view path,
                            util::Timestamp now, double timeout_seconds,
                            double rtt_seconds, FetchResult* result) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.kind != FaultKind::kTimeout && rule.kind != FaultKind::kOutage &&
        rule.kind != FaultKind::kFlap)
      continue;
    if (!Fires(rule, i, host, path, now)) continue;
    Count(rule.kind);
    if (rule.kind == FaultKind::kTimeout) {
      result->error = FetchError::kTimeout;
      result->elapsed_seconds = timeout_seconds;
    } else {
      // Outage and flap-down: the host refuses quickly — cheap to observe,
      // so retry/backoff (not the timeout budget) dominates recovery.
      result->error = FetchError::kConnectionRefused;
      result->elapsed_seconds = rtt_seconds;
    }
    return true;
  }
  return false;
}

void FaultPlan::ApplyAfter(std::string_view host, std::string_view path,
                           util::Timestamp now, FetchResult* result) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    switch (rule.kind) {
      case FaultKind::kTimeout:
      case FaultKind::kOutage:
      case FaultKind::kFlap:
        continue;  // pre-exchange kinds
      default:
        break;
    }
    if (!Fires(rule, i, host, path, now)) continue;
    Count(rule.kind);
    switch (rule.kind) {
      case FaultKind::kHttpError: {
        result->response.status = rule.http_status;
        result->response.body.clear();
        result->response.max_age = 0;
        result->response.retry_after =
            rule.http_status == 503 ? rule.retry_after : 0;
        break;
      }
      case FaultKind::kTruncate: {
        const double keep =
            rule.keep_fraction < 0 ? 0
                                   : (rule.keep_fraction > 1 ? 1
                                                             : rule.keep_fraction);
        result->response.body.resize(static_cast<std::size_t>(
            static_cast<double>(result->response.body.size()) * keep));
        break;
      }
      case FaultKind::kCorrupt: {
        Bytes& body = result->response.body;
        if (body.empty()) break;
        std::uint64_t h = DecisionHash(seed_ ^ 0xC0DEull, i, host, path, now);
        for (std::size_t b = 0; b < rule.corrupt_bytes; ++b) {
          h = Mix64(h);
          body[h % body.size()] ^= static_cast<std::uint8_t>(1 + (h >> 32) % 255);
        }
        break;
      }
      case FaultKind::kLatency: {
        result->elapsed_seconds *= rule.latency_factor;
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace rev::net
