// A deterministic simulated network: named hosts with HTTP handlers, a
// latency/bandwidth cost model, and failure injection.
//
// The simulation is synchronous: Fetch() executes the request immediately
// and reports how long it *would* have taken, letting measurement code
// account latency/bandwidth without an event loop. This matches how the
// paper reasons about client cost (RTTs plus size/throughput; §5.2).
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "net/url.h"
#include "util/bytes.h"
#include "util/time.h"

namespace rev::net {

class FaultPlan;

struct HttpRequest {
  std::string method = "GET";
  std::string host;
  std::string path;
  Bytes body;
  // Wire headers (lowercase names by convention). Carries the
  // traceparent context for distributed tracing (obs/distrace.h);
  // handlers may read application headers from here too.
  std::map<std::string, std::string, std::less<>> headers;
};

struct HttpResponse {
  int status = 200;
  Bytes body;
  // Cache lifetime hint in seconds (0 = uncacheable). Stands in for
  // Cache-Control/Expires headers.
  std::int64_t max_age = 0;
  // Retry-After hint in seconds, set by load-shedding endpoints on 503.
  std::int64_t retry_after = 0;
  // Response headers (lowercase names by convention).
  std::map<std::string, std::string, std::less<>> headers;
};

using HttpHandler =
    std::function<HttpResponse(const HttpRequest&, util::Timestamp now)>;

// Link characteristics of a host (server side). Client-side access-link
// characteristics can be modeled by the caller adding its own terms.
struct HostProfile {
  double rtt_seconds = 0.030;          // round-trip time to this host
  double bandwidth_bps = 10e6;         // bits per second on the path
};

enum class FetchError {
  kOk,
  kDnsFailure,        // NXDOMAIN — revocation host does not resolve
  kConnectionRefused, // host known but not listening
  kTimeout,           // host accepts but never responds
  kCorruptBody,       // 200 whose body failed the caller's validation
                      // (truncated/bit-flipped CRL or OCSP — retryable)
};

const char* FetchErrorName(FetchError e);

struct FetchResult {
  FetchError error = FetchError::kOk;
  HttpResponse response;
  // Simulated wall-clock cost of the exchange, in seconds.
  double elapsed_seconds = 0;
  // Bytes that crossed the network (body sizes both ways).
  std::size_t bytes_transferred = 0;

  bool ok() const { return error == FetchError::kOk && response.status == 200; }
};

// Thread-safety: every exchange runs under one internal mutex, so handlers
// (which mutate CA state — lazy CRL rebuilds, OCSP signing) never execute
// concurrently and the cost counters stay exact. Parallel callers overlap
// only their client-side work (parsing, verification); the simulated server
// is a serialization point, like a single-homed CA endpoint.
class SimNet {
 public:
  // Registers (or replaces) a host with the given handler.
  void AddHost(std::string_view hostname, HttpHandler handler,
               HostProfile profile = {});

  void RemoveHost(std::string_view hostname);
  bool HasHost(std::string_view hostname) const;

  // Failure injection (the four §6.1 unavailability modes map to these plus
  // a handler returning 404).
  void SetDnsFailure(std::string_view hostname, bool fail);
  void SetUnresponsive(std::string_view hostname, bool unresponsive);

  // Attaches a deterministic fault schedule (net/fault.h); every exchange
  // consults it. Not owned; may be null (faults off, zero cost). Set it
  // before serving starts — the pointer is read without synchronization
  // beyond the per-exchange lock.
  void SetFaultPlan(FaultPlan* plan);
  FaultPlan* fault_plan() const;

  // Executes an HTTP exchange. `timeout_seconds` caps the simulated wait.
  // Every call tallies the process-wide per-status-class counters
  // net.fetch{class=2xx|4xx|5xx|err} and net.fetch.bytes; when the
  // distributed-trace collector is armed and the request carries a
  // traceparent header, the exchange is recorded as a client span (with a
  // fresh span id injected into the header the handler sees).
  FetchResult Fetch(const HttpRequest& request, util::Timestamp now,
                    double timeout_seconds = 10.0);

  // Convenience: GET a URL string. Unparseable or non-http URLs map to
  // kDnsFailure (matching a browser that cannot resolve the reference).
  FetchResult Get(std::string_view url, util::Timestamp now,
                  double timeout_seconds = 10.0);
  FetchResult Post(std::string_view url, BytesView body, util::Timestamp now,
                   double timeout_seconds = 10.0);

  // Cumulative counters (for bandwidth-cost experiments).
  std::uint64_t total_requests() const;
  std::uint64_t total_bytes() const;
  void ResetCounters();

 private:
  struct Host {
    HttpHandler handler;
    HostProfile profile;
    bool dns_failure = false;
    bool unresponsive = false;
  };

  // The exchange itself, minus tracing/metrics (which the public Fetch
  // wraps around it).
  FetchResult DoFetch(const HttpRequest& request, util::Timestamp now,
                      double timeout_seconds);

  mutable std::mutex mu_;  // serializes exchanges, guards hosts_ + counters
  std::map<std::string, Host, std::less<>> hosts_;
  FaultPlan* fault_plan_ = nullptr;
  std::uint64_t total_requests_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace rev::net
