#include "core/crawler.h"

#include "net/url.h"

namespace rev::core {

RevocationCrawler::RevocationCrawler(net::SimNet* net)
    : net_(net), client_(net) {}

void RevocationCrawler::CollectUrls(const Pipeline& pipeline) {
  for (const CertRecord* record : pipeline.LeafSet()) {
    for (const std::string& url : record->cert->tbs.crl_urls)
      AddUrl(url);
  }
  for (const x509::CertPtr& cert : pipeline.IntermediateSet()) {
    for (const std::string& url : cert->tbs.crl_urls) AddUrl(url);
  }
}

void RevocationCrawler::AddUrl(const std::string& url) {
  // The paper only follows http[s] URLs (ldap:// and file:// are ignored).
  if (net::IsFetchable(url)) urls_.insert(url);
}

std::size_t RevocationCrawler::CrawlAll(util::Timestamp now) {
  std::size_t new_entries = 0;
  for (const std::string& url : urls_) {
    const net::CachingClient::Result result = client_.Get(url, now);
    seconds_spent_ += result.fetch.elapsed_seconds;
    if (!result.fetch.ok()) {
      ++fetch_failures_;
      continue;
    }
    if (!result.from_cache) bytes_downloaded_ += result.fetch.response.body.size();

    auto parsed = crl::ParseCrl(result.fetch.response.body);
    if (!parsed) {
      ++fetch_failures_;
      continue;
    }

    CrawledCrl& crawled = crawled_[url];
    crawled.url = url;
    crawled.issuer_name_der = parsed->tbs.issuer.Encode();
    crawled.size_bytes = parsed->der.size();
    crawled.num_entries = parsed->tbs.entries.size();
    crawled.this_update = parsed->tbs.this_update;
    crawled.next_update = parsed->tbs.next_update;

    for (const crl::CrlEntry& entry : parsed->tbs.entries) {
      auto [it, inserted] = revocations_.try_emplace(
          std::make_pair(crawled.issuer_name_der, entry.serial));
      if (inserted) {
        it->second.revoked_at = entry.revocation_date;
        it->second.reason = entry.reason;
        it->second.first_seen_in_crl = now;
        ++new_entries;
      }
    }
    crawled.crl = *std::move(parsed);
  }
  return new_entries;
}

std::optional<ocsp::CertStatus> RevocationCrawler::QueryOcsp(
    const x509::Certificate& cert, const x509::Certificate& issuer,
    util::Timestamp now) {
  for (const std::string& url : cert.tbs.ocsp_urls) {
    if (!net::IsFetchable(url)) continue;
    ocsp::OcspRequest request;
    request.cert_id = ocsp::MakeCertId(issuer, cert.tbs.serial);
    const net::FetchResult fetch =
        net_->Post(url, ocsp::EncodeOcspRequest(request), now);
    seconds_spent_ += fetch.elapsed_seconds;
    if (!fetch.ok()) {
      ++fetch_failures_;
      continue;
    }
    bytes_downloaded_ += fetch.response.body.size();
    auto response = ocsp::ParseOcspResponse(fetch.response.body);
    if (!response || response->status != ocsp::ResponseStatus::kSuccessful)
      continue;
    if (response->single.status == ocsp::CertStatus::kRevoked) {
      auto [it, inserted] = revocations_.try_emplace(
          std::make_pair(cert.tbs.issuer.Encode(), cert.tbs.serial));
      if (inserted) {
        it->second.revoked_at = response->single.revocation_time;
        it->second.reason = response->single.reason;
        it->second.first_seen_in_crl = now;
      }
    }
    return response->single.status;
  }
  return std::nullopt;
}

const RevocationInfo* RevocationCrawler::Lookup(
    const x509::Name& issuer, const x509::Serial& serial) const {
  auto it = revocations_.find(std::make_pair(issuer.Encode(), serial));
  return it == revocations_.end() ? nullptr : &it->second;
}

std::size_t RevocationCrawler::total_revocations() const {
  return revocations_.size();
}

std::map<x509::ReasonCode, std::size_t> RevocationCrawler::ReasonCodeHistogram()
    const {
  std::map<x509::ReasonCode, std::size_t> histogram;
  for (const auto& [key, info] : revocations_) ++histogram[info.reason];
  return histogram;
}

}  // namespace rev::core
