#include "core/crawler.h"

#include <chrono>

#include "net/retry.h"
#include "net/url.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rev::core {

namespace {

// Crawler-wide instruments (docs/observability.md): fetch outcome counters
// plus a latency histogram over the *real* wall time of each fetch+parse
// (the simulated network cost stays in seconds_spent()). Aggregated across
// crawler instances; the per-instance accessors remain exact.
struct CrawlMetrics {
  obs::Counter& fetch_ok;
  obs::Counter& fetch_fail;
  obs::Counter& cache_hits;
  obs::Counter& bytes_downloaded;
  obs::Counter& revocations;
  obs::Counter& ocsp_queries;
  obs::Counter& retries;
  obs::Counter& stale_served;
  obs::Histogram& fetch_ns;

  static CrawlMetrics& Get() {
    static CrawlMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new CrawlMetrics{
          registry.GetCounter("crawl.fetch_ok"),
          registry.GetCounter("crawl.fetch_fail"),
          registry.GetCounter("crawl.cache_hits"),
          registry.GetCounter("crawl.bytes_downloaded"),
          registry.GetCounter("crawl.revocations_discovered"),
          registry.GetCounter("crawl.ocsp_queries"),
          registry.GetCounter("crawl.retries"),
          registry.GetCounter("crawl.stale_served"),
          registry.GetHistogram("crawl.fetch_ns"),
      };
    }();
    return *metrics;
  }
};

}  // namespace

net::RetryPolicy RevocationCrawler::DefaultRetryPolicy() {
  // A daily crawl can afford to wait out a 5xx burst or a flap: four
  // attempts with minutes-scale caps before falling back to the previous
  // snapshot.
  net::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 5;
  policy.backoff_multiplier = 2;
  policy.max_backoff_seconds = 300;
  policy.jitter = 0.5;
  return policy;
}

RevocationCrawler::RevocationCrawler(net::SimNet* net, unsigned threads)
    : net_(net), client_(net), threads_(threads) {}

void RevocationCrawler::set_threads(unsigned threads) {
  threads_ = threads;
  pool_.reset();  // rebuilt at the new size on the next CrawlAll
}

void RevocationCrawler::CollectUrls(const Pipeline& pipeline) {
  // Columnar walk: URLs are interned ids, so dedup by id first and build a
  // std::string only once per distinct URL.
  const CertCorpus& corpus = pipeline.corpus();
  std::set<std::uint32_t> url_ids;
  for (const CertCorpus::Row row : pipeline.LeafSet()) {
    for (const std::uint32_t id : corpus.crl_url_ids(row)) url_ids.insert(id);
  }
  for (const std::uint32_t id : url_ids) AddUrl(std::string(corpus.url(id)));
  for (const x509::CertPtr& cert : pipeline.IntermediateSet()) {
    for (const std::string& url : cert->tbs.crl_urls) AddUrl(url);
  }
}

void RevocationCrawler::AddUrl(const std::string& url) {
  // The paper only follows http[s] URLs (ldap:// and file:// are ignored).
  if (net::IsFetchable(url)) urls_.insert(url);
}

std::size_t RevocationCrawler::CrawlAll(util::Timestamp now) {
  obs::Span visit_span("crawl.visit");
  const auto wall_start = std::chrono::steady_clock::now();

  // Phase 1 — fan out: fetch + parse every URL, one slot per URL. Workers
  // touch only their own slot; the cache, the simulated network, and the
  // crawler state they share are either internally synchronized (client_,
  // net_) or not written until the merge below.
  struct Outcome {
    net::CachingClient::Result result;
    std::optional<crl::Crl> parsed;
  };
  const std::vector<std::string> urls(urls_.begin(), urls_.end());
  std::vector<Outcome> outcomes(urls.size());
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(threads_);
  pool_->ParallelFor(urls.size(), [&](std::size_t i) {
    obs::Span fetch_span("crawl.fetch");
    const auto fetch_start = std::chrono::steady_clock::now();
    Outcome& out = outcomes[i];
    // The parse-as-validator makes truncated/bit-corrupted bodies
    // retryable and keeps them out of the HTTP cache.
    out.result = client_.Get(urls[i], now, retry_policy_,
                             [](const net::HttpResponse& response) {
                               return crl::ParseCrl(response.body).has_value();
                             });
    if (out.result.fetch.ok())
      out.parsed = crl::ParseCrl(out.result.fetch.response.body);
    CrawlMetrics::Get().fetch_ns.RecordSeconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      fetch_start)
            .count());
  });

  // Phase 2 — deterministic merge in URL-sorted order (the order the old
  // serial loop used): counter accumulation (including the floating-point
  // seconds sum) and revocation-DB insertion are byte-identical to the
  // serial run at any thread count.
  std::size_t new_entries = 0;
  CrawlMetrics& metrics = CrawlMetrics::Get();
  for (std::size_t i = 0; i < urls.size(); ++i) {
    const std::string& url = urls[i];
    Outcome& out = outcomes[i];
    seconds_spent_ += out.result.fetch.elapsed_seconds;
    if (out.result.attempts > 1) {
      const auto extra = static_cast<std::uint64_t>(out.result.attempts - 1);
      retries_ += extra;
      metrics.retries.Add(extra);
    }
    if (!out.result.fetch.ok() || !out.parsed) {
      // Exhausted retries (or an unparseable body that survived them):
      // count the failure, and if a previous crawl produced a snapshot,
      // keep serving it marked stale — revocations already learned must
      // not vanish because an endpoint is having a bad day.
      ++fetch_failures_;
      metrics.fetch_fail.Increment();
      ++url_failures_[url];
      auto stale_it = crawled_.find(url);
      if (stale_it != crawled_.end()) {
        stale_it->second.stale = true;
        ++stale_it->second.stale_crawls;
        stale_it->second.stale_age_seconds =
            now - stale_it->second.last_good_fetch;
        ++stale_served_;
        metrics.stale_served.Increment();
      }
      continue;
    }
    if (out.result.from_cache) {
      metrics.cache_hits.Increment();
    } else {
      bytes_downloaded_ += out.result.fetch.response.body.size();
      metrics.bytes_downloaded.Add(out.result.fetch.response.body.size());
    }

    metrics.fetch_ok.Increment();
    crl::Crl& parsed = *out.parsed;

    CrawledCrl& crawled = crawled_[url];
    crawled.url = url;
    crawled.issuer_name_der = parsed.tbs.issuer.Encode();
    crawled.size_bytes = parsed.der.size();
    crawled.num_entries = parsed.tbs.entries.size();
    crawled.this_update = parsed.tbs.this_update;
    crawled.next_update = parsed.tbs.next_update;
    crawled.stale = false;
    crawled.stale_age_seconds = 0;
    crawled.last_good_fetch = now;

    for (const crl::CrlEntry& entry : parsed.tbs.entries) {
      RevocationInfo info;
      info.revoked_at = entry.revocation_date;
      info.reason = entry.reason;
      info.first_seen_in_crl = now;
      if (db_.Insert(crawled.issuer_name_der, entry.serial, info))
        ++new_entries;
    }
    crawled.crl = std::move(parsed);
  }
  metrics.revocations.Add(new_entries);
  crawl_wall_seconds_ += std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  return new_entries;
}

std::optional<ocsp::CertStatus> RevocationCrawler::QueryOcsp(
    const x509::Certificate& cert, const x509::Certificate& issuer,
    util::Timestamp now) {
  obs::Span span("crawl.ocsp_query");
  for (const std::string& url : cert.tbs.ocsp_urls) {
    if (!net::IsFetchable(url)) continue;
    CrawlMetrics::Get().ocsp_queries.Increment();
    ocsp::OcspRequest request;
    request.cert_ids = {ocsp::MakeCertId(issuer, cert.tbs.serial)};
    const net::RetryResult retried = net::PostWithRetry(
        *net_, url, ocsp::EncodeOcspRequest(request), now, retry_policy_,
        /*timeout_seconds=*/10.0, [](const net::HttpResponse& response) {
          return ocsp::ParseOcspResponse(response.body).has_value();
        });
    seconds_spent_ += retried.total_elapsed_seconds;
    if (retried.attempts > 1) {
      const auto extra = static_cast<std::uint64_t>(retried.attempts - 1);
      retries_ += extra;
      CrawlMetrics::Get().retries.Add(extra);
    }
    const net::FetchResult& fetch = retried.fetch;
    if (!fetch.ok()) {
      ++fetch_failures_;
      ++url_failures_[url];
      continue;
    }
    bytes_downloaded_ += fetch.response.body.size();
    auto response = ocsp::ParseOcspResponse(fetch.response.body);
    if (!response || response->status != ocsp::ResponseStatus::kSuccessful)
      continue;
    if (response->single.status == ocsp::CertStatus::kRevoked) {
      RevocationInfo info;
      info.revoked_at = response->single.revocation_time;
      info.reason = response->single.reason;
      info.first_seen_in_crl = now;
      db_.Insert(cert.tbs.issuer.Encode(), cert.tbs.serial, info);
    }
    return response->single.status;
  }
  return std::nullopt;
}

const RevocationInfo* RevocationCrawler::Lookup(
    const x509::Name& issuer, const x509::Serial& serial) const {
  return db_.Lookup(issuer.Encode(), serial);
}

std::size_t RevocationCrawler::total_revocations() const { return db_.size(); }

std::map<x509::ReasonCode, std::size_t> RevocationCrawler::ReasonCodeHistogram()
    const {
  std::map<x509::ReasonCode, std::size_t> histogram;
  for (const auto& [key, info] : db_.entries()) ++histogram[info.reason];
  return histogram;
}

}  // namespace rev::core
