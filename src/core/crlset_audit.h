// The CRLSet audit (§7): simulates Google's daily CRLSet generation over
// the ecosystem's CRLs and measures coverage (Fig. 7, §7.2), size dynamics
// (Fig. 8), daily additions (Fig. 9), and windows of vulnerability
// (Fig. 10). The Bloom/GCS alternative of Fig. 11 builds on the same data.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/crawler.h"
#include "core/ecosystem.h"
#include "core/pipeline.h"
#include "crlset/crlset.h"
#include "crlset/generator.h"
#include "util/stats.h"
#include "util/time.h"

namespace rev::core {

class CrlsetAuditor {
 public:
  CrlsetAuditor(Ecosystem* eco, crlset::GeneratorConfig config);

  struct Options {
    // The paper observed a two-week gap with no CRLSet additions
    // (Nov–Dec 2014, Fig. 9); reproduce it as a generator outage.
    std::optional<util::Timestamp> outage_start;
    std::optional<util::Timestamp> outage_end;
    // The "VeriSign Class 3 EV" parent removal (May 2014, Fig. 8).
    std::optional<util::Timestamp> parent_removal_date;
    std::string parent_removal_ca = "Verisign";
  };

  // Runs daily generation from `start` to `end` inclusive.
  void RunDaily(util::Timestamp start, util::Timestamp end,
                const Options& options);
  void RunDaily(util::Timestamp start, util::Timestamp end) {
    RunDaily(start, end, Options{});
  }

  struct DayRecord {
    util::Timestamp day = 0;
    std::size_t crlset_entries = 0;
    std::size_t crl_new_entries = 0;     // Fig. 9 upper line
    std::size_t crlset_new_entries = 0;  // Fig. 9 lower line
  };
  const std::vector<DayRecord>& days() const { return days_; }

  const crlset::CrlSet& latest() const { return latest_; }

  // Fig. 10 distributions, in days.
  util::Distribution DaysToAppear() const;
  util::Distribution RemovalToExpiryDays() const;

  // Fig. 7: per covered CRL, the fraction of its entries in the final
  // CRLSet — over all entries and over CRLSet-reason-coded entries only.
  struct CoverageCdf {
    util::Distribution all_entries;
    util::Distribution reason_coded;
    std::size_t covered_crls = 0;  // CRLs that ever contributed an entry
    std::size_t total_crls = 0;
  };
  CoverageCdf ComputeCoverageCdf(util::Timestamp now);

  // §7.2 headline numbers.
  struct CoverageStats {
    std::size_t total_revocations = 0;    // entries across all CRLs
    std::size_t crlset_entries = 0;
    std::size_t total_parents = 0;        // CA certificates
    std::size_t covered_parents = 0;
    std::size_t covered_crls = 0;
    std::size_t total_crls = 0;
    // Alexa-tier coverage of revoked Leaf Set certificates.
    std::size_t top1k_revoked = 0, top1k_in_crlset = 0;
    std::size_t top1m_revoked = 0, top1m_in_crlset = 0;
  };
  CoverageStats ComputeCoverage(util::Timestamp now, const Pipeline& pipeline,
                                const RevocationCrawler& crawler);

 private:
  struct EntryTrack {
    util::Timestamp first_in_crl = 0;
    util::Timestamp first_in_crlset = 0;  // 0 = never
    util::Timestamp left_crlset = 0;      // 0 = still there or never
    util::Timestamp cert_expiry = 0;
    util::Timestamp left_crl = 0;         // 0 = still present
  };

  Ecosystem* eco_;
  crlset::GeneratorConfig config_;
  int sequence_ = 0;
  crlset::CrlSet latest_;
  std::vector<DayRecord> days_;
  // (parent spki hash, serial) -> track
  std::map<std::pair<Bytes, x509::Serial>, EntryTrack> tracks_;
  // (ca index, shard) -> last CRL number folded into the tracker.
  std::map<std::pair<std::size_t, int>, std::int64_t> last_seen_crl_number_;
};

}  // namespace rev::core
