// The revocation database: (issuer name DER, serial) -> RevocationInfo.
//
// Extracted from RevocationCrawler so the Table 1 / Fig. 1 / CRLSet analyses
// can run against a database alone (the paper-scale bench synthesizes one
// directly), and so columnar callers can look up by borrowed views without
// materializing key Bytes. Entries are insert-only — the first sighting of a
// (issuer, serial) pair wins, preserving first_seen_in_crl for the Fig. 10
// vulnerability-window analysis — and iteration order matches the
// std::map<std::pair<Bytes, Serial>> it replaced byte for byte.
#pragma once

#include <cstring>
#include <map>
#include <utility>

#include "util/bytes.h"
#include "util/time.h"
#include "x509/extensions.h"

namespace rev::core {

struct RevocationInfo {
  util::Timestamp revoked_at = 0;
  x509::ReasonCode reason = x509::ReasonCode::kNoReasonCode;
  // When the crawler first saw this entry in a CRL (for Fig. 10's
  // window-of-vulnerability analysis).
  util::Timestamp first_seen_in_crl = 0;
};

class RevocationDb {
 public:
  using Key = std::pair<Bytes, Bytes>;  // (issuer name DER, serial)

  // Lexicographic pair order, identical to std::less<Key>, with transparent
  // overloads so view keys never allocate.
  struct KeyLess {
    using is_transparent = void;

    static int Cmp(BytesView a, BytesView b) {
      const std::size_t n = a.size() < b.size() ? a.size() : b.size();
      if (n != 0) {
        const int c = std::memcmp(a.data(), b.data(), n);
        if (c != 0) return c;
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
    template <typename A, typename B, typename C, typename D>
    bool operator()(const std::pair<A, B>& a, const std::pair<C, D>& b) const {
      const int c = Cmp(BytesView(a.first), BytesView(b.first));
      if (c != 0) return c < 0;
      return Cmp(BytesView(a.second), BytesView(b.second)) < 0;
    }
  };

  using Map = std::map<Key, RevocationInfo, KeyLess>;

  // try_emplace semantics: inserts only if the key is new; returns whether
  // it inserted. An existing entry is never overwritten.
  bool Insert(BytesView issuer_name_der, BytesView serial,
              const RevocationInfo& info) {
    auto it = map_.find(std::make_pair(issuer_name_der, serial));
    if (it != map_.end()) return false;
    map_.emplace(Key{Bytes(issuer_name_der.begin(), issuer_name_der.end()),
                     Bytes(serial.begin(), serial.end())},
                 info);
    return true;
  }

  // Revocation info for (issuer, serial), or nullptr. Accepts borrowed
  // views — no allocation on the lookup path.
  const RevocationInfo* Lookup(BytesView issuer_name_der,
                               BytesView serial) const {
    auto it = map_.find(std::make_pair(issuer_name_der, serial));
    return it == map_.end() ? nullptr : &it->second;
  }

  const Map& entries() const { return map_; }
  std::size_t size() const { return map_.size(); }

 private:
  Map map_;
};

}  // namespace rev::core
