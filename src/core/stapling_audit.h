// OCSP Stapling measurements (§4.3, Fig. 3).
#pragma once

#include <cstdint>
#include <vector>

#include "scan/scanner.h"
#include "util/rng.h"
#include "util/time.h"

namespace rev::core {

// §4.3 aggregate statistics from one TLS-handshake scan.
struct StaplingStats {
  std::uint64_t servers_total = 0;
  std::uint64_t servers_stapled = 0;
  std::uint64_t fresh_certs = 0;
  std::uint64_t certs_any_staple = 0;   // served by >=1 stapling server
  std::uint64_t certs_all_staple = 0;   // all servers stapled
  std::uint64_t ev_fresh_certs = 0;
  std::uint64_t ev_certs_any_staple = 0;
  std::uint64_t ev_certs_all_staple = 0;

  double ServerFraction() const {
    return servers_total ? static_cast<double>(servers_stapled) /
                               static_cast<double>(servers_total)
                         : 0;
  }
};

// Aggregates a handshake scan, counting only certificates fresh at the scan
// time (matching "fresh Leaf Set certificates advertised in this scan").
StaplingStats ComputeStaplingStats(const scan::HandshakeScanSnapshot& scan);

// The Fig. 3 repeat-connection experiment: connects to `sample` random
// alive servers up to `max_requests` times (3 s apart) and reports, for
// each request count n, the fraction of eventually-stapling servers first
// observed to staple within n requests. Index 0 of the result corresponds
// to n = 1.
std::vector<double> StaplingRepeatCurve(scan::Internet& internet,
                                        util::Timestamp t, int max_requests,
                                        std::size_t sample,
                                        std::uint64_t seed);

}  // namespace rev::core
