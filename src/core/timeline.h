// Certificate-lifetime analytics: Fig. 1's fresh/alive timelines folded with
// crawler revocation data into the Fig. 2 time series, plus the Fig. 4
// revocation-information adoption series.
#pragma once

#include <vector>

#include "core/crawler.h"
#include "core/pipeline.h"
#include "util/time.h"

namespace rev::core {

struct RevocationTimelinePoint {
  util::Timestamp time = 0;
  std::size_t fresh = 0;
  std::size_t fresh_revoked = 0;
  std::size_t fresh_ev = 0;
  std::size_t fresh_ev_revoked = 0;
  std::size_t alive = 0;
  std::size_t alive_revoked = 0;
  std::size_t alive_ev = 0;
  std::size_t alive_ev_revoked = 0;

  double FreshRevokedFraction() const {
    return fresh ? static_cast<double>(fresh_revoked) / static_cast<double>(fresh) : 0;
  }
  double FreshEvRevokedFraction() const {
    return fresh_ev ? static_cast<double>(fresh_ev_revoked) / static_cast<double>(fresh_ev) : 0;
  }
  double AliveRevokedFraction() const {
    return alive ? static_cast<double>(alive_revoked) / static_cast<double>(alive) : 0;
  }
  double AliveEvRevokedFraction() const {
    return alive_ev ? static_cast<double>(alive_ev_revoked) / static_cast<double>(alive_ev) : 0;
  }
};

// Samples the fraction of fresh and alive certificates that are revoked,
// every `step_seconds` from `start` to `end` (Fig. 2). Revocation times come
// from the revocation database, so certificates revoked before the crawl
// period are back-dated by their CRL revocation timestamps, matching §3.
// The primary overload takes the database directly (the paper-scale bench
// synthesizes one); the crawler overload delegates.
std::vector<RevocationTimelinePoint> ComputeRevocationTimeline(
    const Pipeline& pipeline, const RevocationDb& db, util::Timestamp start,
    util::Timestamp end, std::int64_t step_seconds = 7 * util::kSecondsPerDay);

inline std::vector<RevocationTimelinePoint> ComputeRevocationTimeline(
    const Pipeline& pipeline, const RevocationCrawler& crawler,
    util::Timestamp start, util::Timestamp end,
    std::int64_t step_seconds = 7 * util::kSecondsPerDay) {
  return ComputeRevocationTimeline(pipeline, crawler.db(), start, end,
                                   step_seconds);
}

struct AdoptionPoint {
  util::Timestamp month_start = 0;
  std::size_t issued = 0;
  std::size_t with_crl = 0;
  std::size_t with_ocsp = 0;

  double CrlFraction() const {
    return issued ? static_cast<double>(with_crl) / static_cast<double>(issued) : 0;
  }
  double OcspFraction() const {
    return issued ? static_cast<double>(with_ocsp) / static_cast<double>(issued) : 0;
  }
};

// Buckets Leaf Set certificates by issuance month (notBefore) and reports
// the fraction carrying reachable CRL / OCSP pointers (Fig. 4).
std::vector<AdoptionPoint> ComputeRevinfoAdoption(const Pipeline& pipeline);

}  // namespace rev::core
