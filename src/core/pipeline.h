// The scan-processing pipeline (§3.1): deduplicates observed certificates,
// tracks per-certificate lifetimes (birth = first advertisement, death =
// last), builds the Intermediate Set by iterative verification against the
// root store, and validates leaves with date errors ignored.
//
// Storage is the columnar core::CertCorpus (ROADMAP item 2): ingest streams
// observations into arena/interned columns — a full scan snapshot never
// needs to be resident — and Finalize() batches leaf verification with
// ParallelFor over contiguous columns plus precomputed per-issuer HMAC
// verifiers, so output is bit-identical at any thread count
// (docs/parallelism.md, docs/corpus.md). Equivalence with the pre-columnar
// serial path is locked down by tests/corpus_test.cpp.
#pragma once

#include <span>
#include <vector>

#include "core/corpus.h"
#include "scan/scanner.h"
#include "util/bytes.h"
#include "util/time.h"
#include "x509/verify.h"

namespace rev::core {

class Pipeline {
 public:
  // `threads` sizes the Finalize() fan-out: 0 = hardware concurrency,
  // 1 = the exact serial path.
  explicit Pipeline(x509::CertPool roots, unsigned threads = 0)
      : roots_(std::move(roots)), threads_(threads) {}

  // Folds one scan into the store. Snapshots should arrive in chronological
  // order; a snapshot with the same timestamp as the latest merges into the
  // latest-scan view (it does NOT clear previously set flags), and an older
  // snapshot is folded into lifetimes/observations but never touches the
  // latest-scan view — such regressions are counted in out_of_order_scans().
  // Equivalent to BeginScan + one Observe per observation + EndScan.
  void IngestScan(const scan::CertScanSnapshot& snapshot);

  // Streaming ingest: fold observations one at a time without materializing
  // a snapshot. Timestamp semantics are identical to IngestScan.
  void BeginScan(util::Timestamp t);
  // One observation (chain leaf-first); null chain elements are skipped.
  // Returns the leaf's row (kNoRow for an empty/null-leaf chain).
  CertCorpus::Row Observe(std::span<const x509::CertPtr> chain);
  // Raw-DER variant: every element must parse (borrowed-view parse); if any
  // is malformed the whole observation is rejected (nullopt) and the corpus
  // is left untouched. This is the path fuzzed in tests/fuzz_test.cpp.
  std::optional<CertCorpus::Row> ObserveDer(std::span<const BytesView> chain);
  // Replay fast path for chains already interned (bench_paper_scale): folds
  // lifetime/observation columns only.
  void ObserveRows(std::span<const CertCorpus::Row> chain);
  void EndScan();

  // Builds the Intermediate Set and validates all leaves. Call after the
  // last scan; idempotent.
  void Finalize();

  // The columnar store of every unique certificate observed.
  const CertCorpus& corpus() const { return corpus_; }

  // The paper's Leaf Set: non-CA certificates that verified (dates
  // ignored), as stable corpus row ids in fingerprint order — the iteration
  // order of the map-based store this replaced. Row ids (unlike the old
  // record pointers) survive any amount of further ingest.
  std::vector<CertCorpus::Row> LeafSet() const;

  // The paper's Intermediate Set.
  const std::vector<x509::CertPtr>& IntermediateSet() const {
    return intermediate_set_;
  }

  const x509::CertPool& roots() const { return roots_; }
  util::Timestamp latest_scan_time() const { return latest_scan_time_; }
  std::uint64_t total_observed() const { return corpus_.size(); }

  // Snapshots ingested with a timestamp older than one already seen.
  std::uint64_t out_of_order_scans() const { return out_of_order_scans_; }

  unsigned threads() const { return threads_; }
  void set_threads(unsigned threads) { threads_ = threads; }

  // Cost accounting: real wall time spent inside Finalize(), split into the
  // serial Intermediate-Set construction and the parallel leaf-verification
  // stage (bench_dataset_stats reports these for the speedup measurement).
  double finalize_wall_seconds() const { return finalize_wall_seconds_; }
  double intermediate_wall_seconds() const { return intermediate_wall_seconds_; }
  double verify_wall_seconds() const { return verify_wall_seconds_; }

 private:
  x509::CertPool roots_;
  CertCorpus corpus_;
  std::vector<x509::CertPtr> intermediate_set_;
  util::Timestamp latest_scan_time_ = 0;
  std::uint64_t out_of_order_scans_ = 0;
  bool finalized_ = false;
  unsigned threads_ = 0;
  util::Timestamp scan_time_ = 0;
  bool scan_in_latest_ = false;
  double finalize_wall_seconds_ = 0;
  double intermediate_wall_seconds_ = 0;
  double verify_wall_seconds_ = 0;
};

}  // namespace rev::core
