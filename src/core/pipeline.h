// The scan-processing pipeline (§3.1): deduplicates observed certificates,
// tracks per-certificate lifetimes (birth = first advertisement, death =
// last), builds the Intermediate Set by iterative verification against the
// root store, and validates leaves with date errors ignored.
#pragma once

#include <map>
#include <vector>

#include "scan/scanner.h"
#include "util/bytes.h"
#include "util/time.h"
#include "x509/verify.h"

namespace rev::core {

struct CertRecord {
  x509::CertPtr cert;
  util::Timestamp first_seen = 0;  // birth
  util::Timestamp last_seen = 0;   // death (so far)
  std::uint64_t observations = 0;  // server-observations across all scans
  bool valid = false;              // verified against the root store
  bool in_latest_scan = false;
};

class Pipeline {
 public:
  explicit Pipeline(x509::CertPool roots) : roots_(std::move(roots)) {}

  // Folds one scan into the store.
  void IngestScan(const scan::CertScanSnapshot& snapshot);

  // Builds the Intermediate Set and validates all leaves. Call after the
  // last IngestScan; idempotent.
  void Finalize();

  // All unique certificates observed (leaves and CA certs alike).
  const std::map<Bytes, CertRecord>& records() const { return records_; }

  // The paper's Leaf Set: non-CA certificates that verified (dates ignored).
  std::vector<const CertRecord*> LeafSet() const;

  // The paper's Intermediate Set.
  const std::vector<x509::CertPtr>& IntermediateSet() const {
    return intermediate_set_;
  }

  const x509::CertPool& roots() const { return roots_; }
  util::Timestamp latest_scan_time() const { return latest_scan_time_; }
  std::uint64_t total_observed() const { return records_.size(); }

 private:
  x509::CertPool roots_;
  std::map<Bytes, CertRecord> records_;
  std::vector<x509::CertPtr> intermediate_set_;
  util::Timestamp latest_scan_time_ = 0;
  bool finalized_ = false;
};

}  // namespace rev::core
