// The scan-processing pipeline (§3.1): deduplicates observed certificates,
// tracks per-certificate lifetimes (birth = first advertisement, death =
// last), builds the Intermediate Set by iterative verification against the
// root store, and validates leaves with date errors ignored.
//
// Finalize() fans the per-leaf chain verifications out across a
// util::ThreadPool; results are written into each record's pre-existing
// slot, so output is bit-identical at any thread count (docs/parallelism.md).
#pragma once

#include <map>
#include <vector>

#include "scan/scanner.h"
#include "util/bytes.h"
#include "util/time.h"
#include "x509/verify.h"

namespace rev::core {

struct CertRecord {
  x509::CertPtr cert;
  util::Timestamp first_seen = 0;  // birth
  util::Timestamp last_seen = 0;   // death (so far)
  std::uint64_t observations = 0;  // server-observations across all scans
  bool valid = false;              // verified against the root store
  bool in_latest_scan = false;
};

class Pipeline {
 public:
  // `threads` sizes the Finalize() fan-out: 0 = hardware concurrency,
  // 1 = the exact serial path.
  explicit Pipeline(x509::CertPool roots, unsigned threads = 0)
      : roots_(std::move(roots)), threads_(threads) {}

  // Folds one scan into the store. Snapshots should arrive in chronological
  // order; a snapshot with the same timestamp as the latest merges into the
  // latest-scan view (it does NOT clear previously set flags), and an older
  // snapshot is folded into lifetimes/observations but never touches the
  // latest-scan view — such regressions are counted in out_of_order_scans().
  void IngestScan(const scan::CertScanSnapshot& snapshot);

  // Builds the Intermediate Set and validates all leaves. Call after the
  // last IngestScan; idempotent.
  void Finalize();

  // All unique certificates observed (leaves and CA certs alike).
  const std::map<Bytes, CertRecord>& records() const { return records_; }

  // The paper's Leaf Set: non-CA certificates that verified (dates ignored).
  std::vector<const CertRecord*> LeafSet() const;

  // The paper's Intermediate Set.
  const std::vector<x509::CertPtr>& IntermediateSet() const {
    return intermediate_set_;
  }

  const x509::CertPool& roots() const { return roots_; }
  util::Timestamp latest_scan_time() const { return latest_scan_time_; }
  std::uint64_t total_observed() const { return records_.size(); }

  // Snapshots ingested with a timestamp older than one already seen.
  std::uint64_t out_of_order_scans() const { return out_of_order_scans_; }

  unsigned threads() const { return threads_; }
  void set_threads(unsigned threads) { threads_ = threads; }

  // Cost accounting: real wall time spent inside Finalize(), split into the
  // serial Intermediate-Set construction and the parallel leaf-verification
  // stage (bench_dataset_stats reports these for the speedup measurement).
  double finalize_wall_seconds() const { return finalize_wall_seconds_; }
  double intermediate_wall_seconds() const { return intermediate_wall_seconds_; }
  double verify_wall_seconds() const { return verify_wall_seconds_; }

 private:
  x509::CertPool roots_;
  std::map<Bytes, CertRecord> records_;
  std::vector<x509::CertPtr> intermediate_set_;
  util::Timestamp latest_scan_time_ = 0;
  std::uint64_t out_of_order_scans_ = 0;
  bool finalized_ = false;
  unsigned threads_ = 0;
  double finalize_wall_seconds_ = 0;
  double intermediate_wall_seconds_ = 0;
  double verify_wall_seconds_ = 0;
};

}  // namespace rev::core
