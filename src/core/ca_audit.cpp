#include "core/ca_audit.h"

#include <algorithm>
#include <map>

#include "net/url.h"

namespace rev::core {

namespace {

// Per-URL-id memo of net::IsFetchable over the corpus's interned URL table:
// each distinct URL is classified once, not once per referencing row.
class FetchableMemo {
 public:
  explicit FetchableMemo(const CertCorpus& corpus)
      : corpus_(corpus), memo_(corpus.num_urls(), kUnknown) {}

  bool operator()(std::uint32_t url_id) {
    std::int8_t& slot = memo_[url_id];
    if (slot == kUnknown)
      slot = net::IsFetchable(std::string(corpus_.url(url_id))) ? 1 : 0;
    return slot == 1;
  }

  bool AnyFetchable(std::span<const std::uint32_t> ids) {
    for (const std::uint32_t id : ids)
      if ((*this)(id)) return true;
    return false;
  }

 private:
  static constexpr std::int8_t kUnknown = -1;
  const CertCorpus& corpus_;
  std::vector<std::int8_t> memo_;
};

}  // namespace

DatasetStats ComputeDatasetStats(const Pipeline& pipeline) {
  const CertCorpus& corpus = pipeline.corpus();
  DatasetStats stats;
  stats.unique_certs = corpus.size();
  stats.intermediate_set = pipeline.IntermediateSet().size();

  FetchableMemo fetchable(corpus);
  for (const CertCorpus::Row row : pipeline.LeafSet()) {
    ++stats.leaf_set;
    if (corpus.in_latest_scan(row)) ++stats.leaf_still_advertised;
    const bool crl = fetchable.AnyFetchable(corpus.crl_url_ids(row));
    const bool ocsp = fetchable.AnyFetchable(corpus.ocsp_url_ids(row));
    if (crl) ++stats.leaf_with_crl;
    if (ocsp) ++stats.leaf_with_ocsp;
    if (!crl && !ocsp) ++stats.leaf_unrevocable;
  }
  auto has_fetchable = [](const std::vector<std::string>& urls) {
    for (const std::string& url : urls)
      if (net::IsFetchable(url)) return true;
    return false;
  };
  for (const x509::CertPtr& cert : pipeline.IntermediateSet()) {
    const bool crl = has_fetchable(cert->tbs.crl_urls);
    const bool ocsp = has_fetchable(cert->tbs.ocsp_urls);
    if (crl) ++stats.intermediate_with_crl;
    if (ocsp) ++stats.intermediate_with_ocsp;
    if (!crl && !ocsp) ++stats.intermediate_unrevocable;
  }
  return stats;
}

std::vector<CrlSizeSample> CollectCrlSizes(const RevocationCrawler& crawler,
                                           const Pipeline& pipeline,
                                           const Ecosystem& eco) {
  const CertCorpus& corpus = pipeline.corpus();
  std::map<std::string, CrlSizeSample> by_url;
  for (const auto& [url, crawled] : crawler.crawled()) {
    CrlSizeSample sample;
    sample.url = url;
    sample.ca_name = eco.CaNameForUrl(url);
    sample.entries = crawled.num_entries;
    sample.bytes = crawled.size_bytes;
    by_url.emplace(url, std::move(sample));
  }

  // URL id -> sample, resolved once per distinct URL (map nodes are
  // pointer-stable; nullptr marks ids with no crawled CRL).
  std::vector<CrlSizeSample*> by_id(corpus.num_urls(), nullptr);
  std::vector<bool> resolved(corpus.num_urls(), false);
  auto sample_for = [&](std::uint32_t url_id) -> CrlSizeSample* {
    if (!resolved[url_id]) {
      resolved[url_id] = true;
      auto it = by_url.find(std::string(corpus.url(url_id)));
      by_id[url_id] = it == by_url.end() ? nullptr : &it->second;
    }
    return by_id[url_id];
  };

  // Weight: each Leaf Set certificate contributes 1 to its smallest CRL.
  for (const CertCorpus::Row row : pipeline.LeafSet()) {
    CrlSizeSample* smallest = nullptr;
    for (const std::uint32_t url_id : corpus.crl_url_ids(row)) {
      CrlSizeSample* sample = sample_for(url_id);
      if (!sample) continue;
      if (!smallest || sample->bytes < smallest->bytes) smallest = sample;
    }
    if (smallest) smallest->cert_weight += 1;
  }

  std::vector<CrlSizeSample> samples;
  samples.reserve(by_url.size());
  for (auto& [url, sample] : by_url) samples.push_back(std::move(sample));
  return samples;
}

CrlSizeDistributions BuildCrlSizeDistributions(
    const std::vector<CrlSizeSample>& samples) {
  CrlSizeDistributions dist;
  for (const CrlSizeSample& sample : samples) {
    dist.raw.Add(static_cast<double>(sample.bytes));
    if (sample.cert_weight > 0)
      dist.weighted.Add(static_cast<double>(sample.bytes), sample.cert_weight);
  }
  return dist;
}

std::vector<CaStatsRow> ComputeTable1(const std::vector<CrlSizeSample>& samples,
                                      const Pipeline& pipeline,
                                      const RevocationDb& db,
                                      const CaNameResolver& ca_name_for_url) {
  const CertCorpus& corpus = pipeline.corpus();
  struct Agg {
    std::size_t num_crls = 0;
    std::size_t total_certs = 0;
    std::size_t revoked = 0;
    double weighted_bytes = 0;  // sum over certs of their CRL size
    double weight = 0;
  };
  std::map<std::string, Agg> by_ca;

  for (const CrlSizeSample& sample : samples) {
    if (sample.ca_name.empty()) continue;
    Agg& agg = by_ca[sample.ca_name];
    ++agg.num_crls;
    agg.weighted_bytes +=
        static_cast<double>(sample.bytes) * sample.cert_weight;
    agg.weight += sample.cert_weight;
  }

  // URL id -> CA name, resolved once per distinct URL.
  std::vector<std::string> name_memo(corpus.num_urls());
  std::vector<bool> name_resolved(corpus.num_urls(), false);
  auto name_for = [&](std::uint32_t url_id) -> const std::string& {
    if (!name_resolved[url_id]) {
      name_resolved[url_id] = true;
      name_memo[url_id] = ca_name_for_url(std::string(corpus.url(url_id)));
    }
    return name_memo[url_id];
  };

  for (const CertCorpus::Row row : pipeline.LeafSet()) {
    std::string ca_name;
    for (const std::uint32_t url_id : corpus.crl_url_ids(row)) {
      ca_name = name_for(url_id);
      if (!ca_name.empty()) break;
    }
    const std::span<const std::uint32_t> ocsp = corpus.ocsp_url_ids(row);
    if (ca_name.empty() && !ocsp.empty()) ca_name = name_for(ocsp.front());
    if (ca_name.empty()) continue;
    Agg& agg = by_ca[ca_name];
    ++agg.total_certs;
    if (db.Lookup(corpus.name_der(corpus.issuer_id(row)), corpus.serial(row)))
      ++agg.revoked;
  }

  std::vector<CaStatsRow> rows;
  for (const auto& [name, agg] : by_ca) {
    CaStatsRow row;
    row.name = name;
    row.num_crls = agg.num_crls;
    row.total_certs = agg.total_certs;
    row.revoked_certs = agg.revoked;
    row.avg_crl_size_kb =
        agg.weight > 0 ? agg.weighted_bytes / agg.weight / 1024.0 : 0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const CaStatsRow& a, const CaStatsRow& b) {
    return a.total_certs > b.total_certs;
  });
  return rows;
}

}  // namespace rev::core
