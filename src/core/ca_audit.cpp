#include "core/ca_audit.h"

#include <algorithm>
#include <map>

#include "net/url.h"

namespace rev::core {

DatasetStats ComputeDatasetStats(const Pipeline& pipeline) {
  DatasetStats stats;
  stats.unique_certs = pipeline.records().size();
  stats.intermediate_set = pipeline.IntermediateSet().size();

  auto has_fetchable = [](const std::vector<std::string>& urls) {
    for (const std::string& url : urls)
      if (net::IsFetchable(url)) return true;
    return false;
  };

  for (const CertRecord* record : pipeline.LeafSet()) {
    ++stats.leaf_set;
    if (record->in_latest_scan) ++stats.leaf_still_advertised;
    const bool crl = has_fetchable(record->cert->tbs.crl_urls);
    const bool ocsp = has_fetchable(record->cert->tbs.ocsp_urls);
    if (crl) ++stats.leaf_with_crl;
    if (ocsp) ++stats.leaf_with_ocsp;
    if (!crl && !ocsp) ++stats.leaf_unrevocable;
  }
  for (const x509::CertPtr& cert : pipeline.IntermediateSet()) {
    const bool crl = has_fetchable(cert->tbs.crl_urls);
    const bool ocsp = has_fetchable(cert->tbs.ocsp_urls);
    if (crl) ++stats.intermediate_with_crl;
    if (ocsp) ++stats.intermediate_with_ocsp;
    if (!crl && !ocsp) ++stats.intermediate_unrevocable;
  }
  return stats;
}

std::vector<CrlSizeSample> CollectCrlSizes(const RevocationCrawler& crawler,
                                           const Pipeline& pipeline,
                                           const Ecosystem& eco) {
  std::map<std::string, CrlSizeSample> by_url;
  for (const auto& [url, crawled] : crawler.crawled()) {
    CrlSizeSample sample;
    sample.url = url;
    sample.ca_name = eco.CaNameForUrl(url);
    sample.entries = crawled.num_entries;
    sample.bytes = crawled.size_bytes;
    by_url.emplace(url, std::move(sample));
  }

  // Weight: each Leaf Set certificate contributes 1 to its smallest CRL.
  for (const CertRecord* record : pipeline.LeafSet()) {
    CrlSizeSample* smallest = nullptr;
    for (const std::string& url : record->cert->tbs.crl_urls) {
      auto it = by_url.find(url);
      if (it == by_url.end()) continue;
      if (!smallest || it->second.bytes < smallest->bytes)
        smallest = &it->second;
    }
    if (smallest) smallest->cert_weight += 1;
  }

  std::vector<CrlSizeSample> samples;
  samples.reserve(by_url.size());
  for (auto& [url, sample] : by_url) samples.push_back(std::move(sample));
  return samples;
}

CrlSizeDistributions BuildCrlSizeDistributions(
    const std::vector<CrlSizeSample>& samples) {
  CrlSizeDistributions dist;
  for (const CrlSizeSample& sample : samples) {
    dist.raw.Add(static_cast<double>(sample.bytes));
    if (sample.cert_weight > 0)
      dist.weighted.Add(static_cast<double>(sample.bytes), sample.cert_weight);
  }
  return dist;
}

std::vector<CaStatsRow> ComputeTable1(const std::vector<CrlSizeSample>& samples,
                                      const Pipeline& pipeline,
                                      const RevocationCrawler& crawler,
                                      const Ecosystem& eco) {
  struct Agg {
    std::size_t num_crls = 0;
    std::size_t total_certs = 0;
    std::size_t revoked = 0;
    double weighted_bytes = 0;  // sum over certs of their CRL size
    double weight = 0;
  };
  std::map<std::string, Agg> by_ca;

  for (const CrlSizeSample& sample : samples) {
    if (sample.ca_name.empty()) continue;
    Agg& agg = by_ca[sample.ca_name];
    ++agg.num_crls;
    agg.weighted_bytes +=
        static_cast<double>(sample.bytes) * sample.cert_weight;
    agg.weight += sample.cert_weight;
  }

  for (const CertRecord* record : pipeline.LeafSet()) {
    std::string ca_name;
    for (const std::string& url : record->cert->tbs.crl_urls) {
      ca_name = eco.CaNameForUrl(url);
      if (!ca_name.empty()) break;
    }
    if (ca_name.empty() && !record->cert->tbs.ocsp_urls.empty())
      ca_name = eco.CaNameForUrl(record->cert->tbs.ocsp_urls.front());
    if (ca_name.empty()) continue;
    Agg& agg = by_ca[ca_name];
    ++agg.total_certs;
    if (crawler.Lookup(record->cert->tbs.issuer, record->cert->tbs.serial))
      ++agg.revoked;
  }

  std::vector<CaStatsRow> rows;
  for (const auto& [name, agg] : by_ca) {
    CaStatsRow row;
    row.name = name;
    row.num_crls = agg.num_crls;
    row.total_certs = agg.total_certs;
    row.revoked_certs = agg.revoked;
    row.avg_crl_size_kb =
        agg.weight > 0 ? agg.weighted_bytes / agg.weight / 1024.0 : 0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const CaStatsRow& a, const CaStatsRow& b) {
    return a.total_certs > b.total_certs;
  });
  return rows;
}

}  // namespace rev::core
