#include "core/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace rev::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << cells[i]
          << std::string(widths[i] - cells[i].size() + 2, ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string RenderSeries(const std::string& x_label,
                         const std::vector<Series>& series, int max_rows) {
  std::vector<std::string> headers = {x_label};
  for (const Series& s : series) headers.push_back(s.name);
  TextTable table(std::move(headers));

  std::size_t n = 0;
  for (const Series& s : series) n = std::max(n, s.points.size());
  std::size_t step = 1;
  if (max_rows > 0 && n > static_cast<std::size_t>(max_rows))
    step = (n + static_cast<std::size_t>(max_rows) - 1) / static_cast<std::size_t>(max_rows);

  for (std::size_t i = 0; i < n; i += step) {
    std::vector<std::string> row;
    double x = 0;
    for (const Series& s : series)
      if (i < s.points.size()) x = s.points[i].first;
    row.push_back(FormatDouble(x, 2));
    for (const Series& s : series) {
      row.push_back(i < s.points.size() ? FormatDouble(s.points[i].second, 6)
                                        : "");
    }
    table.AddRow(std::move(row));
  }
  return table.Render();
}

}  // namespace rev::core
