// A compact binary archive for certificate-scan datasets — the equivalent
// of the scans.io / sslresearch.org data releases the paper built on and
// published. Certificates are stored once (deduplicated by fingerprint);
// snapshots reference them by index, so a 74-scan study costs little more
// than the unique DER plus observation tuples.
//
// Format (all integers big-endian u32 unless noted):
//   magic "RVKA", version u32
//   cert_count, then cert_count length-prefixed DER blobs
//   snapshot_count, then per snapshot:
//     time (i64), observation_count, then per observation:
//       ip u32, chain_len u32, chain_len cert indices
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scan/scanner.h"
#include "util/bytes.h"

namespace rev::core {

class ScanArchive {
 public:
  // Folds a snapshot into the archive, interning unseen certificates.
  void AddSnapshot(const scan::CertScanSnapshot& snapshot);

  std::size_t snapshot_count() const { return snapshots_.size(); }
  std::size_t cert_count() const { return certs_.size(); }

  // Reconstructs the snapshots (certificates are shared CertPtrs).
  std::vector<scan::CertScanSnapshot> Snapshots() const;

  Bytes Serialize() const;
  static std::optional<ScanArchive> Deserialize(BytesView data);

  // File convenience. Returns false on I/O failure.
  bool SaveToFile(const std::string& path) const;
  static std::optional<ScanArchive> LoadFromFile(const std::string& path);

 private:
  struct Observation {
    std::uint32_t ip = 0;
    std::vector<std::uint32_t> chain;  // indices into certs_
  };
  struct Snapshot {
    util::Timestamp time = 0;
    std::vector<Observation> observations;
  };

  std::uint32_t Intern(const x509::CertPtr& cert);

  std::vector<x509::CertPtr> certs_;
  std::map<Bytes, std::uint32_t> index_by_fingerprint_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace rev::core
