// Open-addressing index from certificate fingerprints to corpus rows.
//
// The index stores only a 64-bit hash tag and the row id per slot (12 bytes
// versus the ~100 bytes per node of the std::map it replaces); the full
// 32-byte fingerprint lives in the corpus column, and lookups resolve rare
// tag collisions through a caller-supplied equality predicate against that
// column. Linear probing over a power-of-two table, grown at 3/4 load.
// Agreement with a std::map oracle (including after rehash) is
// property-tested in tests/property_test.cpp.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/bytes.h"

namespace rev::core {

class FingerprintIndex {
 public:
  static constexpr std::uint32_t kNoRow = 0xFFFF'FFFFu;

  // Fingerprints are SHA-256 output, so their first 8 bytes are already a
  // uniform 64-bit hash.
  static std::uint64_t HashOf(BytesView fingerprint) {
    std::uint64_t h = 0;
    if (!fingerprint.empty())
      std::memcpy(&h, fingerprint.data(),
                  fingerprint.size() < 8 ? fingerprint.size() : 8);
    return h;
  }

  // Finds the row whose key matches; `eq(row)` must compare the probe key
  // against the backing column. Called only on hash-tag matches.
  template <typename Eq>
  std::uint32_t Find(std::uint64_t hash, const Eq& eq) const {
    if (rows_.empty()) return kNoRow;
    std::size_t i = static_cast<std::size_t>(hash) & mask_;
    while (rows_[i] != kNoRow) {
      if (hashes_[i] == hash && eq(rows_[i])) return rows_[i];
      i = (i + 1) & mask_;
    }
    return kNoRow;
  }

  // Inserts `row` under `hash`; the caller guarantees the key is absent.
  void Insert(std::uint64_t hash, std::uint32_t row) {
    if ((size_ + 1) * 4 >= rows_.size() * 3) Grow();
    std::size_t i = static_cast<std::size_t>(hash) & mask_;
    while (rows_[i] != kNoRow) i = (i + 1) & mask_;
    hashes_[i] = hash;
    rows_[i] = row;
    ++size_;
  }

  void Reserve(std::size_t n) {
    std::size_t cap = 64;
    while (cap * 3 < n * 4) cap *= 2;
    if (cap > rows_.size()) Rehash(cap);
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return rows_.size(); }
  std::size_t bytes() const {
    return rows_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  }

 private:
  void Grow() { Rehash(rows_.empty() ? 64 : rows_.size() * 2); }

  void Rehash(std::size_t cap) {
    std::vector<std::uint64_t> old_hashes = std::move(hashes_);
    std::vector<std::uint32_t> old_rows = std::move(rows_);
    hashes_.assign(cap, 0);
    rows_.assign(cap, kNoRow);
    mask_ = cap - 1;
    for (std::size_t j = 0; j < old_rows.size(); ++j) {
      if (old_rows[j] == kNoRow) continue;
      std::size_t i = static_cast<std::size_t>(old_hashes[j]) & mask_;
      while (rows_[i] != kNoRow) i = (i + 1) & mask_;
      hashes_[i] = old_hashes[j];
      rows_[i] = old_rows[j];
    }
  }

  std::vector<std::uint64_t> hashes_;
  std::vector<std::uint32_t> rows_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace rev::core
