#include "core/ecosystem.h"

#include <algorithm>
#include <cmath>

namespace rev::core {

void EcosystemConfig::ApplyDefaults() {
  if (issuance_start == 0) issuance_start = util::MakeDate(2011, 1, 1);
  if (study_start == 0) study_start = util::MakeDate(2013, 10, 30);
  if (study_end == 0) study_end = util::MakeDate(2015, 3, 31);
  if (crawl_start == 0) crawl_start = util::MakeDate(2014, 10, 2);
  if (heartbleed == 0) heartbleed = util::MakeDate(2014, 4, 8);
}

std::vector<CaSpec> DefaultCaSpecs() {
  // Calibrated from Table 1 (certificate and CRL counts, serial-length
  // policies) and §5.1 (OCSP adoption; RapidSSL adopted July 2012).
  const util::Timestamp early = util::MakeDate(2009, 1, 1);
  const util::Timestamp rapidssl_ocsp = util::MakeDate(2012, 7, 1);
  std::vector<CaSpec> specs = {
      // name        crls  certs      rev/yr  hb     ser  skew  ocsp-date
      {"GoDaddy", 322, 1'050'014, 0.140, 0.55, 20, 1.6, early, 0.92, false, 0,
       180'000},
      {"RapidSSL", 5, 626'774, 0.0020, 0.015, 16, 0.5, rapidssl_ocsp, 0.95,
       true, 0, 3'000},
      {"Comodo", 30, 447'506, 0.009, 0.070, 16, 1.2, early, 0.90, true, 0,
       38'000, 0.25},
      {"PositiveSSL", 3, 415'075, 0.010, 0.070, 16, 1.0, early, 0.90, false, 0,
       20'000},
      {"GeoTrust", 27, 335'380, 0.0045, 0.030, 12, 0.9, early, 0.95, true, 0,
       2'000},
      {"Verisign", 37, 311'788, 0.028, 0.150, 21, 1.2, early, 0.85, true, 0,
       12'000, 0.35},
      {"Thawte", 32, 278'563, 0.009, 0.070, 12, 0.9, early, 0.90, true, 0,
       2'500},
      {"GlobalSign", 26, 247'819, 0.055, 0.250, 20, 1.8, early, 0.88, false, 0,
       78'000, 0.30},
      {"StartCom", 17, 236'776, 0.0035, 0.025, 16, 2.0, early, 0.85, false, 0,
       290'000},
      // Off-web CRL populations: CAs whose CRLs dominate the raw entry
      // counts but whose certificates are rarely served on port 443. The
      // first stands in for Apple WWDR (the 76 MB / 2.6M-entry CRL).
      {"AppleWWDR", 1, 4'000, 0.05, 0.0, 16, 0.0, early, 0.95, false,
       2'600'000},
      {"OffWebOps", 12, 0, 0.0, 0.0, 18, 0.6, early, 0.9, false, 8'500'000},
  };
  return specs;
}

namespace {

constexpr std::int64_t kYear = 365 * util::kSecondsPerDay;

std::vector<double> ZipfWeights(int n, double s) {
  std::vector<double> weights(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    weights[static_cast<std::size_t>(i)] = 1.0 / std::pow(i + 1, s);
  return weights;
}

}  // namespace

void Ecosystem::BuildCas(util::Rng& rng) {
  // Roots.
  std::vector<ca::CertificateAuthority*> root_cas;
  for (int i = 0; i < config_.num_roots; ++i) {
    ca::CertificateAuthority::Options options;
    options.name = "SimRoot " + std::to_string(i + 1);
    options.domain = "root" + std::to_string(i + 1) + ".sim";
    auto root = ca::CertificateAuthority::CreateRoot(
        options, rng, util::MakeDate(2006, 1, 1),
        25 * kYear);
    root->RegisterEndpoints(&net_);
    roots_.Add(root->cert());
    root_cas.push_back(root.get());
    owned_cas_.push_back(std::move(root));
  }

  std::vector<CaSpec> specs = DefaultCaSpecs();
  // Tail of small CAs, one CRL each; a slice of them is google-crawled
  // (most covered CRLs are small ones, §7.2).
  for (int i = 0; i < config_.num_tail_cas; ++i) {
    CaSpec spec;
    spec.name = "SmallCA" + std::to_string(i + 1);
    spec.num_crls = 1;
    spec.paper_certs = 8'000 + (static_cast<std::size_t>(i) % 7) * 3'000;
    spec.steady_revoke_per_year = 0.004 + 0.001 * (i % 5);
    spec.heartbleed_revoke_prob = 0.03;
    spec.serial_bytes = 10 + (i % 3) * 4;
    spec.ocsp_adoption = util::MakeDate(2009 + (i % 4), 1 + (i % 12), 1);
    spec.crlset_reason_fraction = 0.85 + 0.03 * (i % 5);
    spec.google_crawled = (i % 4) == 0;
    specs.push_back(spec);
  }

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const CaSpec& spec = specs[i];
    ca::CertificateAuthority::Options options;
    options.name = spec.name;
    options.domain = spec.name + ".sim";
    for (char& c : options.domain)
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    // Shard counts scale with the certificate population (at reduced scale,
    // keeping all 322 of GoDaddy's CRLs would make every CRL trivially
    // small and destroy the Fig. 6 weighted-size shape). Off-web CRL
    // populations keep their structural shard counts.
    int effective_shards = spec.num_crls;
    if (spec.paper_offweb_revocations == 0) {
      effective_shards = static_cast<int>(
          std::llround(static_cast<double>(spec.num_crls) * config_.scale * 100));
      effective_shards = std::clamp(effective_shards, 1, spec.num_crls);
    }
    options.num_crl_shards = effective_shards;
    options.serial_bytes = spec.serial_bytes;
    // Off-web CRL populations re-issue weekly (they are huge and their
    // churn does not matter day-to-day); web CAs re-issue daily (§5.2:
    // 95% of CRLs expire within 24 hours).
    if (spec.paper_offweb_revocations > 0)
      options.crl_validity_seconds = 7 * util::kSecondsPerDay;
    // Roughly half of real intermediate certificates carry no OCSP pointer
    // (§3.2: 48.5%) — they predate OCSP adoption.
    const bool intermediate_has_ocsp = (i % 2) == 0;
    auto ca = root_cas[i % root_cas.size()]->CreateIntermediate(
        options, rng, util::MakeDate(2008, 1, 1), 15 * kYear,
        /*include_crl_url=*/true, intermediate_has_ocsp);
    if (spec.shard_skew > 0)
      ca->SetShardWeights(ZipfWeights(effective_shards, spec.shard_skew));
    ca->RegisterEndpoints(&net_);
    host_to_ca_name_[ca->CrlHost()] = spec.name;
    host_to_ca_name_[ca->OcspHost()] = spec.name;
    CaSpec effective_spec = spec;
    effective_spec.num_crls = effective_shards;
    CaEntry entry;
    entry.spec = std::move(effective_spec);
    entry.ca = ca.get();

    // Optional second-level sub-CA.
    if (spec.subca_fraction > 0) {
      ca::CertificateAuthority::Options sub_options;
      sub_options.name = spec.name + " SubCA";
      sub_options.domain = "sub." + options.domain;
      sub_options.num_crl_shards = std::max(1, effective_shards / 4);
      sub_options.serial_bytes = spec.serial_bytes;
      auto sub = ca->CreateIntermediate(sub_options, rng,
                                        util::MakeDate(2010, 1, 1), 12 * kYear);
      if (spec.shard_skew > 0)
        sub->SetShardWeights(
            ZipfWeights(sub_options.num_crl_shards, spec.shard_skew));
      sub->RegisterEndpoints(&net_);
      host_to_ca_name_[sub->CrlHost()] = sub_options.name;
      host_to_ca_name_[sub->OcspHost()] = sub_options.name;
      entry.sub_ca = sub.get();

      CaSpec sub_spec = spec;
      sub_spec.name = sub_options.name;
      sub_spec.num_crls = sub_options.num_crl_shards;
      sub_spec.paper_certs = 0;  // issuance is driven from the parent entry
      sub_spec.paper_offweb_revocations = 0;
      sub_spec.paper_hidden_revocations = spec.paper_hidden_revocations / 5;
      sub_spec.subca_fraction = 0;
      CaEntry sub_entry;
      sub_entry.spec = std::move(sub_spec);
      sub_entry.ca = sub.get();
      sub_entry.parent_ca = ca.get();
      ca_entries_.push_back(std::move(sub_entry));
      owned_cas_.push_back(std::move(sub));
    }

    // Cross-sign GeoTrust by a second root (same subject and key, different
    // issuer; §2.1 footnote 3) so scans contain certificates with multiple
    // valid paths and the pipeline's path building is exercised at scale.
    if (spec.name == "GeoTrust" && root_cas.size() >= 2) {
      ca::CertificateAuthority* signer =
          root_cas[(i + 1) % root_cas.size()];
      x509::TbsCertificate cross_tbs = ca->cert()->tbs;
      cross_tbs.issuer = signer->cert()->tbs.subject;
      cross_tbs.serial.push_back(0x77);  // distinct serial under the signer
      entry.cross_cert = std::make_shared<const x509::Certificate>(
          x509::SignCertificate(cross_tbs, signer->key()));
    }

    ca_entries_.push_back(std::move(entry));
    owned_cas_.push_back(std::move(ca));
  }
}

void Ecosystem::IssuePopulation(util::Rng& rng) {
  const util::Timestamp issuance_end = config_.study_end;
  const double issuance_span =
      static_cast<double>(issuance_end - config_.issuance_start);

  for (CaEntry& entry : ca_entries_) {
    const CaSpec& spec = entry.spec;
    ca::CertificateAuthority& ca = *entry.ca;

    // Hidden and off-web CRL populations scale more slowly than the scanned
    // certificate population: scaling them linearly would collapse every
    // CRL to a few hundred bytes and erase the raw-vs-weighted size
    // structure of Fig. 6 (per-CRL entry counts are what the figures
    // measure, and they do not shrink just because we scan fewer hosts).
    const double hidden_scale = std::min(1.0, config_.scale * 10);

    // Off-web revocation mass (not tied to served certificates).
    if (spec.paper_offweb_revocations > 0) {
      const auto count = static_cast<std::size_t>(
          static_cast<double>(spec.paper_offweb_revocations) * hidden_scale);
      ca.AddSyntheticRevocations(
          count, rng, config_.issuance_start, config_.study_end,
          config_.study_end + 30 * util::kSecondsPerDay,
          config_.study_end + 5 * kYear, x509::ReasonCode::kNoReasonCode);
    }

    // Hidden revocations: entries in this CA's CRLs for certificates the
    // scans never see (the CA's non-web issuance). They expire across the
    // study and beyond, feeding the CRL-shrinkage dynamics.
    if (spec.paper_hidden_revocations > 0) {
      const auto count = static_cast<std::size_t>(
          static_cast<double>(spec.paper_hidden_revocations) * hidden_scale);
      // 70% steady-state (revocation dates spread over the study) plus a
      // 30% Heartbleed-clustered batch: the hidden populations were hit by
      // the vulnerability too, which is what puts the CRLSet entry-count
      // peak at April 2014 (Fig. 8).
      const auto hb_count = count * 3 / 10;
      const util::Timestamp expiry_max =
          config_.study_end + 240 * util::kSecondsPerDay;
      ca.AddSyntheticRevocations(count - hb_count, rng,
                                 config_.issuance_start, config_.study_end,
                                 config_.study_start + 30 * util::kSecondsPerDay,
                                 expiry_max, x509::ReasonCode::kNoReasonCode);
      ca.AddSyntheticRevocations(hb_count, rng, config_.heartbleed,
                                 config_.heartbleed + 30 * util::kSecondsPerDay,
                                 config_.heartbleed + 60 * util::kSecondsPerDay,
                                 expiry_max, x509::ReasonCode::kKeyCompromise);
    }

    const auto num_certs = static_cast<std::size_t>(
        static_cast<double>(spec.paper_certs) * config_.scale);
    for (std::size_t c = 0; c < num_certs; ++c) {
      // Issuance time: density grows linearly over the window.
      const double u = std::sqrt(rng.UniformDouble());
      const util::Timestamp issued =
          config_.issuance_start +
          static_cast<util::Timestamp>(u * issuance_span);

      // Lifetime: 1y (45%), 2y (33%), 3y (22%).
      const double lv = rng.UniformDouble();
      const std::int64_t lifetime =
          lv < 0.45 ? kYear : (lv < 0.78 ? 2 * kYear : 3 * kYear);
      const util::Timestamp expiry = issued + lifetime;
      // Certificates dead before the first scan never enter the dataset.
      if (expiry < config_.study_start) continue;

      ca::CertificateAuthority::IssueOptions issue;
      issue.common_name = "www.site" + std::to_string(total_issued_) + ".sim";
      issue.ev = rng.Chance(config_.ev_fraction);
      issue.not_before = issued;
      issue.lifetime_seconds = lifetime;
      const bool unrevocable = rng.Chance(config_.unrevocable_fraction);
      issue.include_crl_url = !unrevocable && rng.Chance(0.999);
      issue.include_ocsp_url =
          !unrevocable && issued >= spec.ocsp_adoption && rng.Chance(0.99);
      if (unrevocable) {
        issue.include_crl_url = false;
        issue.include_ocsp_url = false;
      }
      // A slice of the population is issued through the sub-CA, producing
      // two-intermediate chains.
      ca::CertificateAuthority& issuing =
          (entry.sub_ca != nullptr && rng.Chance(spec.subca_fraction))
              ? *entry.sub_ca
              : ca;
      x509::CertPtr leaf = issuing.Issue(issue, rng);
      ++total_issued_;

      // Popularity tier.
      const double pop = rng.UniformDouble();
      PopularityTier tier = pop < 0.0004
                                ? PopularityTier::kTop1k
                                : (pop < 0.20 ? PopularityTier::kTop1M
                                              : PopularityTier::kOther);
      popularity_[leaf->Fingerprint()] = tier;

      // Revocation schedule.
      util::Timestamp revoked_at = 0;
      x509::ReasonCode reason = x509::ReasonCode::kNoReasonCode;
      const double years_fresh =
          static_cast<double>(lifetime) / static_cast<double>(kYear);
      if (rng.Chance(spec.steady_revoke_per_year * years_fresh)) {
        revoked_at = issued + static_cast<util::Timestamp>(
                                  rng.UniformDouble() *
                                  static_cast<double>(lifetime));
      } else if (issued < config_.heartbleed && expiry > config_.heartbleed &&
                 rng.Chance(spec.heartbleed_revoke_prob)) {
        revoked_at = config_.heartbleed +
                     static_cast<util::Timestamp>(
                         rng.Exponential(5.0 * util::kSecondsPerDay));
        reason = x509::ReasonCode::kKeyCompromise;
      }
      if (revoked_at != 0 && revoked_at < expiry) {
        if (reason == x509::ReasonCode::kNoReasonCode) {
          // §4.2: the vast majority of revocations carry no reason code;
          // per-CA, a slice uses non-CRLSet-eligible codes.
          if (!rng.Chance(spec.crlset_reason_fraction))
            reason = rng.Chance(0.6) ? x509::ReasonCode::kSuperseded
                                     : x509::ReasonCode::kCessationOfOperation;
          else if (rng.Chance(0.15))
            reason = x509::ReasonCode::kKeyCompromise;
        }
        issuing.Revoke(leaf->tbs.serial, revoked_at, reason);
      } else {
        revoked_at = 0;
      }

      // Server population advertising this certificate.
      int num_servers = 1 + static_cast<int>(rng.Poisson(0.6));
      if (rng.Chance(0.02)) num_servers += static_cast<int>(rng.Pareto(3, 1.2));
      num_servers = std::min(num_servers, 60);

      const bool cert_staples = rng.Chance(
          issue.ev ? config_.stapling_cert_fraction_ev
                   : config_.stapling_cert_fraction);

      // Early rotation is a per-certificate event: when the admin replaces
      // the certificate, every server serving it switches (this drives the
      // paper's 45.2% still-advertised figure, §3.1).
      util::Timestamp rotate_at = 0;
      if (revoked_at == 0 && rng.Chance(0.70)) {
        rotate_at = issued + static_cast<util::Timestamp>(
                                 rng.Uniform(0.20, 0.85) *
                                 static_cast<double>(lifetime));
      }

      for (int s = 0; s < num_servers; ++s) {
        scan::Server server{};
        server.ip = static_cast<std::uint32_t>(rng.Next());
        server.leaf = leaf;
        server.chain = {leaf, issuing.cert()};
        if (&issuing != &ca) server.chain.push_back(ca.cert());
        // Some servers advertise the cross-signed variant of the issuing
        // CA's certificate instead.
        if (&issuing == &ca && entry.cross_cert && rng.Chance(0.4))
          server.chain[1] = entry.cross_cert;
        server.birth = issued + static_cast<util::Timestamp>(
                                    rng.UniformDouble() * 20.0 *
                                    static_cast<double>(util::kSecondsPerDay));

        // Death: normally around expiry; early if revoked (most admins
        // rotate); a slice keeps advertising revoked or expired certs.
        util::Timestamp death = expiry;
        if (revoked_at != 0 &&
            !rng.Chance(config_.keep_advertising_after_revoke)) {
          death = revoked_at + static_cast<util::Timestamp>(
                                   rng.UniformDouble() * 12.0 *
                                   static_cast<double>(util::kSecondsPerDay));
        } else if (revoked_at != 0) {
          // Revoked but still advertised; a slice keeps serving even past
          // expiry (the paper's gamespace.adobe.com — both expired AND
          // revoked, §4.1).
          if (rng.Chance(config_.advertise_past_expiry)) {
            death = expiry + static_cast<util::Timestamp>(
                                 rng.UniformDouble() * 200.0 *
                                 static_cast<double>(util::kSecondsPerDay));
          }
        } else if (rng.Chance(config_.advertise_past_expiry)) {
          death = expiry + static_cast<util::Timestamp>(
                               rng.UniformDouble() * 300.0 *
                               static_cast<double>(util::kSecondsPerDay));
        } else if (rotate_at != 0) {
          death = rotate_at;
        }
        server.death = death;
        if (server.death <= server.birth ||
            server.death < config_.study_start)
          continue;

        tls::TlsServer::Config tls_config;
        const bool staples = cert_staples && rng.Chance(0.7);
        if (staples) {
          tls_config.stapling_enabled = true;
          tls_config.staple_requires_cache =
              rng.Chance(config_.staple_requires_cache_fraction);
          if (tls_config.staple_requires_cache)
            tls_config.background_traffic =
                rng.Chance(config_.staple_background_traffic);
          ca::CertificateAuthority* issuer = &issuing;
          const x509::Serial serial = leaf->tbs.serial;
          // Staple fetches flake per-handshake; a fresh fetch succeeds with
          // config probability (drives the Fig. 3 ramp).
          auto fetch_rng = std::make_shared<util::Rng>(rng.Next());
          const double success = config_.staple_fetch_success;
          tls_config.fetch_leaf_staple =
              [issuer, serial, fetch_rng, success](util::Timestamp t) {
                if (!fetch_rng->Chance(success)) return Bytes{};
                return issuer->StapleFor(serial, t);
              };
        }
        server.tls = tls::TlsServer(tls_config);

        internet_.AddServer(std::move(server));
      }
    }
  }
}

std::unique_ptr<Ecosystem> Ecosystem::Build(EcosystemConfig config) {
  config.ApplyDefaults();
  auto eco = std::unique_ptr<Ecosystem>(new Ecosystem());
  eco->config_ = config;
  util::Rng rng(config.seed);
  eco->BuildCas(rng);
  eco->IssuePopulation(rng);
  return eco;
}

std::string Ecosystem::CaNameForUrl(const std::string& url) const {
  auto parsed = net::ParseUrl(url);
  if (!parsed) return {};
  auto it = host_to_ca_name_.find(parsed->host);
  return it == host_to_ca_name_.end() ? std::string{} : it->second;
}

std::vector<crlset::CrlSource> Ecosystem::CrlSetSources(
    util::Timestamp now, std::size_t* out_total_entries) {
  std::vector<crlset::CrlSource> sources;
  std::size_t total_entries = 0;
  for (CaEntry& entry : ca_entries_) {
    const Bytes parent = entry.ca->cert()->SubjectSpkiSha256();
    for (int shard = 0; shard < entry.spec.num_crls; ++shard) {
      const crl::Crl& crl = entry.ca->GetCrl(shard, now);
      total_entries += crl.tbs.entries.size();
      if (!entry.spec.google_crawled) continue;
      crlset::CrlSource source;
      source.parent_spki_sha256 = parent;
      source.crl = &crl;
      sources.push_back(std::move(source));
    }
  }
  if (out_total_entries) *out_total_entries = total_entries;
  return sources;
}

bool Ecosystem::SetGoogleCrawled(const std::string& ca_name, bool crawled) {
  for (CaEntry& entry : ca_entries_) {
    if (entry.spec.name == ca_name) {
      entry.spec.google_crawled = crawled;
      return true;
    }
  }
  return false;
}

PopularityTier Ecosystem::TierOf(const Bytes& leaf_fingerprint) const {
  auto it = popularity_.find(leaf_fingerprint);
  return it == popularity_.end() ? PopularityTier::kOther : it->second;
}

std::size_t Ecosystem::total_revoked() const {
  std::size_t total = 0;
  for (const CaEntry& entry : ca_entries_) total += entry.ca->revoked_count();
  return total;
}

}  // namespace rev::core
