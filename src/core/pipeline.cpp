#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace rev::core {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Pipeline-wide instruments (docs/observability.md). Aggregates across
// pipeline instances; the per-instance wall-second accessors below remain
// the exact per-run numbers.
obs::Counter& ScansCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("pipeline.scans_ingested");
  return counter;
}

obs::Counter& LeavesCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("pipeline.leaves_verified");
  return counter;
}

obs::Histogram& VerifyHistogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("pipeline.verify_ns");
  return histogram;
}

}  // namespace

void Pipeline::IngestScan(const scan::CertScanSnapshot& snapshot) {
  obs::Span span("pipeline.ingest_scan");
  ScansCounter().Increment();
  finalized_ = false;
  // Only a strictly newer snapshot starts a new latest-scan view; a second
  // snapshot at the same timestamp merges into the current view (clearing
  // here would silently drop the first snapshot's leaves), and an older one
  // must not disturb the view at all.
  const bool strictly_newer = snapshot.time > latest_scan_time_;
  const bool in_latest = snapshot.time >= latest_scan_time_;
  if (strictly_newer) {
    latest_scan_time_ = snapshot.time;
    for (auto& [fp, record] : records_) record.in_latest_scan = false;
  } else if (!in_latest) {
    ++out_of_order_scans_;
  }
  for (const scan::CertObservation& obs : snapshot.observations) {
    for (std::size_t i = 0; i < obs.chain.size(); ++i) {
      const x509::CertPtr& cert = obs.chain[i];
      if (!cert) continue;
      auto [it, inserted] = records_.try_emplace(cert->Fingerprint());
      CertRecord& record = it->second;
      if (inserted) {
        record.cert = cert;
        record.first_seen = snapshot.time;
        record.last_seen = snapshot.time;
      } else {
        record.first_seen = std::min(record.first_seen, snapshot.time);
        record.last_seen = std::max(record.last_seen, snapshot.time);
      }
      // Count server-observations for the leaf position only (used for
      // weighted statistics); chain elements are shared.
      if (i == 0) {
        ++record.observations;
        if (in_latest) record.in_latest_scan = true;
      }
    }
  }
}

void Pipeline::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  obs::Span finalize_span("pipeline.finalize");
  const auto start = std::chrono::steady_clock::now();

  // Candidate intermediates: every CA certificate observed.
  x509::CertPool intermediates;
  std::set<Bytes> intermediate_fps;
  {
    obs::Span intermediates_span("pipeline.intermediates");
    std::vector<x509::CertPtr> candidates;
    for (const auto& [fp, record] : records_) {
      if (record.cert->IsCa()) candidates.push_back(record.cert);
    }
    intermediate_set_ = x509::BuildIntermediateSet(candidates, roots_);

    for (const x509::CertPtr& cert : intermediate_set_) {
      intermediates.Add(cert);
      intermediate_fps.insert(cert->Fingerprint());
    }
  }
  intermediate_wall_seconds_ = SecondsSince(start);

  // Validate every certificate, ignoring date errors (§3.1). CA records are
  // membership checks against the precomputed fingerprint set; leaves get a
  // full chain verification, fanned out across workers. Each worker writes
  // only its own record's `valid` slot over the read-only pools, so the
  // result is identical at every thread count.
  x509::VerifyOptions options;
  options.ignore_dates = true;
  std::vector<CertRecord*> leaves;
  leaves.reserve(records_.size());
  for (auto& [fp, record] : records_) {
    if (record.cert->IsCa()) {
      record.valid = roots_.Contains(*record.cert) ||
                     intermediate_fps.contains(record.cert->Fingerprint());
    } else {
      leaves.push_back(&record);
    }
  }
  const auto verify_start = std::chrono::steady_clock::now();
  {
    obs::Span verify_span("pipeline.verify");
    util::ThreadPool pool(threads_);
    pool.ParallelFor(leaves.size(), [&](std::size_t i) {
      CertRecord& record = *leaves[i];
      const auto chain_start = std::chrono::steady_clock::now();
      record.valid =
          x509::VerifyChain(record.cert, intermediates, roots_, options).ok();
      VerifyHistogram().RecordSeconds(SecondsSince(chain_start));
    });
    LeavesCounter().Add(leaves.size());
  }
  verify_wall_seconds_ = SecondsSince(verify_start);
  finalize_wall_seconds_ = SecondsSince(start);
}

std::vector<const CertRecord*> Pipeline::LeafSet() const {
  std::vector<const CertRecord*> out;
  for (const auto& [fp, record] : records_) {
    if (record.valid && !record.cert->IsCa()) out.push_back(&record);
  }
  return out;
}

}  // namespace rev::core
