#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "crypto/hmac.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace rev::core {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Pipeline-wide instruments (docs/observability.md). Aggregates across
// pipeline instances; the per-instance wall-second accessors below remain
// the exact per-run numbers.
obs::Counter& ScansCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("pipeline.scans_ingested");
  return counter;
}

obs::Counter& LeavesCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("pipeline.leaves_verified");
  return counter;
}

obs::Histogram& VerifyHistogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("pipeline.verify_ns");
  return histogram;
}

}  // namespace

void Pipeline::BeginScan(util::Timestamp t) {
  ScansCounter().Increment();
  finalized_ = false;
  // Only a strictly newer snapshot starts a new latest-scan view; a second
  // snapshot at the same timestamp merges into the current view (clearing
  // here would silently drop the first snapshot's leaves), and an older one
  // must not disturb the view at all.
  const bool strictly_newer = t > latest_scan_time_;
  scan_in_latest_ = t >= latest_scan_time_;
  if (strictly_newer) {
    latest_scan_time_ = t;
    corpus_.AdvanceLatestScan();  // O(1): every row's membership lapses
  } else if (!scan_in_latest_) {
    ++out_of_order_scans_;
  }
  scan_time_ = t;
}

CertCorpus::Row Pipeline::Observe(std::span<const x509::CertPtr> chain) {
  CertCorpus::Row leaf_row = CertCorpus::kNoRow;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const x509::CertPtr& cert = chain[i];
    if (!cert) continue;
    const CertCorpus::Row row = corpus_.Intern(cert);
    corpus_.FoldSeen(row, scan_time_);
    // Count server-observations for the leaf position only (used for
    // weighted statistics); chain elements are shared.
    if (i == 0) {
      leaf_row = row;
      corpus_.AddLeafObservation(row);
      if (scan_in_latest_) corpus_.MarkInLatestScan(row);
    }
  }
  return leaf_row;
}

std::optional<CertCorpus::Row> Pipeline::ObserveDer(
    std::span<const BytesView> chain) {
  if (chain.empty()) return std::nullopt;
  // Validate every element before interning any: a rejected observation
  // must leave the corpus bit-identical (fuzz-tested), so no element may be
  // folded before the last one has passed the parse.
  for (const BytesView der : chain) {
    if (!x509::ParseCertView(der)) return std::nullopt;
  }
  CertCorpus::Row leaf_row = CertCorpus::kNoRow;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const CertCorpus::Row row = corpus_.InternDer(chain[i]);
    corpus_.FoldSeen(row, scan_time_);
    if (i == 0) {
      leaf_row = row;
      corpus_.AddLeafObservation(row);
      if (scan_in_latest_) corpus_.MarkInLatestScan(row);
    }
  }
  return leaf_row;
}

void Pipeline::ObserveRows(std::span<const CertCorpus::Row> chain) {
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const CertCorpus::Row row = chain[i];
    if (row == CertCorpus::kNoRow) continue;
    corpus_.FoldSeen(row, scan_time_);
    if (i == 0) {
      corpus_.AddLeafObservation(row);
      if (scan_in_latest_) corpus_.MarkInLatestScan(row);
    }
  }
}

void Pipeline::EndScan() {}

void Pipeline::IngestScan(const scan::CertScanSnapshot& snapshot) {
  obs::Span span("pipeline.ingest_scan");
  BeginScan(snapshot.time);
  for (const scan::CertObservation& obs : snapshot.observations)
    Observe(obs.chain);
  EndScan();
}

void Pipeline::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  obs::Span finalize_span("pipeline.finalize");
  const auto start = std::chrono::steady_clock::now();

  const std::vector<CertCorpus::Row> rows = corpus_.RowsByFingerprint();

  // Candidate intermediates: every CA certificate observed, materialized in
  // fingerprint order (the old map's iteration order). CA rows are a tiny
  // fraction of the corpus, so this is the only place whole-certificate
  // objects are built in bulk.
  x509::CertPool intermediates;
  std::set<Bytes> intermediate_fps;
  {
    obs::Span intermediates_span("pipeline.intermediates");
    std::vector<x509::CertPtr> candidates;
    for (const CertCorpus::Row r : rows) {
      if (corpus_.is_ca(r)) candidates.push_back(corpus_.cert(r));
    }
    intermediate_set_ = x509::BuildIntermediateSet(candidates, roots_);

    for (const x509::CertPtr& cert : intermediate_set_) {
      intermediates.Add(cert);
      intermediate_fps.insert(cert->Fingerprint());
    }
  }
  intermediate_wall_seconds_ = SecondsSince(start);

  std::set<Bytes> root_fps;
  for (const x509::CertPtr& root : roots_.all())
    root_fps.insert(root->Fingerprint());
  // Allocation-free root check for the per-leaf hot loop: a 64-bit prefix
  // probe over the handful of roots, full compare only on a prefix hit.
  std::vector<std::uint64_t> root_prefixes;
  for (const Bytes& fp : root_fps)
    root_prefixes.push_back(FingerprintIndex::HashOf(fp));
  std::sort(root_prefixes.begin(), root_prefixes.end());
  const auto is_root_fp = [&](BytesView fp) {
    if (!std::binary_search(root_prefixes.begin(), root_prefixes.end(),
                            FingerprintIndex::HashOf(fp)))
      return false;
    for (const Bytes& root_fp : root_fps) {
      if (root_fp.size() == fp.size() &&
          std::equal(fp.begin(), fp.end(), root_fp.begin()))
        return true;
    }
    return false;
  };

  // Validate every certificate, ignoring date errors (§3.1). CA records are
  // membership checks against the precomputed fingerprint sets; leaves get
  // the batched columnar verification below.
  std::vector<CertCorpus::Row> leaves;
  leaves.reserve(rows.size());
  for (const CertCorpus::Row r : rows) {
    if (corpus_.is_ca(r)) {
      const Bytes fp(corpus_.fingerprint(r).begin(),
                     corpus_.fingerprint(r).end());
      corpus_.set_valid(r,
                        root_fps.contains(fp) || intermediate_fps.contains(fp));
    } else {
      leaves.push_back(r);
    }
  }

  // Batched leaf verification. The DFS in x509::VerifyChain reduces, for a
  // non-CA leaf over this pool, to: valid ⟺ the leaf IS a root, or some
  // name-matched candidate (roots first, then Intermediate Set members)
  // whose key type matches verifies the signature — every pool candidate is
  // itself verifiable to a root by construction, and with ignore_dates all
  // date checks pass. So candidates are grouped per interned issuer-name id
  // once, sim-scheme keys get a PrecomputedHmacKey (two SHA-256 mid-state
  // copies per tag instead of two key-block compressions), and the
  // ParallelFor below runs over contiguous columns. Equivalence with the
  // real DFS is asserted by tests/corpus_test.cpp.
  struct Candidate {
    crypto::PrecomputedHmacKey sim_key;  // valid iff is_sim
    const crypto::PublicKey* key = nullptr;
    bool is_sim = false;
  };
  // issuer name id -> candidates, in root-store-then-pool order (the DFS
  // candidate order; order only affects which candidate matches first, not
  // whether one does).
  std::map<std::uint32_t, std::vector<Candidate>> candidates_by_name;
  auto add_candidate = [&](const x509::CertPtr& cert) {
    const std::uint32_t name_id = corpus_.FindName(cert->tbs.subject.Encode());
    // A subject no leaf names can never match: FindName misses only when no
    // corpus row interned that name as issuer or subject.
    if (name_id == util::StringInterner::kInvalidId) return;
    const crypto::PublicKey& key = cert->tbs.public_key;
    const bool is_sim = key.type == crypto::KeyType::kSimSha256;
    candidates_by_name[name_id].push_back(
        Candidate{crypto::PrecomputedHmacKey(is_sim ? BytesView(key.sim_id)
                                                    : BytesView{}),
                  &key, is_sim});
  };
  for (const x509::CertPtr& root : roots_.all()) add_candidate(root);
  for (const x509::CertPtr& cert : intermediate_set_) add_candidate(cert);

  const auto verify_start = std::chrono::steady_clock::now();
  {
    obs::Span verify_span("pipeline.verify");
    util::ThreadPool pool(threads_);
    pool.ParallelFor(leaves.size(), [&](std::size_t i) {
      const CertCorpus::Row r = leaves[i];
      const auto chain_start = std::chrono::steady_clock::now();
      bool valid = false;
      // A leaf that *is* a trusted root verifies trivially.
      if (is_root_fp(corpus_.fingerprint(r))) {
        valid = true;
      } else if (auto it = candidates_by_name.find(corpus_.issuer_id(r));
                 it != candidates_by_name.end()) {
        const BytesView tbs = corpus_.tbs_der(r);
        const BytesView sig = corpus_.signature(r);
        const crypto::KeyType sig_type = corpus_.sig_type(r);
        for (const Candidate& cand : it->second) {
          if (cand.key->type != sig_type) continue;
          if (cand.is_sim) {
            const crypto::Sha256Digest tag = cand.sim_key.Tag(tbs);
            if (sig.size() == tag.size() &&
                std::equal(tag.begin(), tag.end(), sig.begin())) {
              valid = true;
              break;
            }
          } else if (crypto::Verify(*cand.key, tbs, sig)) {
            valid = true;
            break;
          }
        }
      }
      corpus_.set_valid(r, valid);
      VerifyHistogram().RecordSeconds(SecondsSince(chain_start));
    });
    LeavesCounter().Add(leaves.size());
  }
  verify_wall_seconds_ = SecondsSince(verify_start);
  finalize_wall_seconds_ = SecondsSince(start);
}

std::vector<CertCorpus::Row> Pipeline::LeafSet() const {
  std::vector<CertCorpus::Row> out;
  for (const CertCorpus::Row r : corpus_.RowsByFingerprint()) {
    if (corpus_.valid(r) && !corpus_.is_ca(r)) out.push_back(r);
  }
  return out;
}

}  // namespace rev::core
