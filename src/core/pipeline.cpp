#include "core/pipeline.h"

#include <algorithm>

namespace rev::core {

void Pipeline::IngestScan(const scan::CertScanSnapshot& snapshot) {
  finalized_ = false;
  const bool newest = snapshot.time >= latest_scan_time_;
  if (newest) {
    latest_scan_time_ = snapshot.time;
    for (auto& [fp, record] : records_) record.in_latest_scan = false;
  }
  for (const scan::CertObservation& obs : snapshot.observations) {
    for (std::size_t i = 0; i < obs.chain.size(); ++i) {
      const x509::CertPtr& cert = obs.chain[i];
      if (!cert) continue;
      auto [it, inserted] = records_.try_emplace(cert->Fingerprint());
      CertRecord& record = it->second;
      if (inserted) {
        record.cert = cert;
        record.first_seen = snapshot.time;
        record.last_seen = snapshot.time;
      } else {
        record.first_seen = std::min(record.first_seen, snapshot.time);
        record.last_seen = std::max(record.last_seen, snapshot.time);
      }
      // Count server-observations for the leaf position only (used for
      // weighted statistics); chain elements are shared.
      if (i == 0) {
        ++record.observations;
        if (newest) record.in_latest_scan = true;
      }
    }
  }
}

void Pipeline::Finalize() {
  if (finalized_) return;
  finalized_ = true;

  // Candidate intermediates: every CA certificate observed.
  std::vector<x509::CertPtr> candidates;
  for (const auto& [fp, record] : records_) {
    if (record.cert->IsCa()) candidates.push_back(record.cert);
  }
  intermediate_set_ = x509::BuildIntermediateSet(candidates, roots_);

  x509::CertPool intermediates;
  for (const x509::CertPtr& cert : intermediate_set_)
    intermediates.Add(cert);

  // Validate every certificate, ignoring date errors (§3.1).
  x509::VerifyOptions options;
  options.ignore_dates = true;
  for (auto& [fp, record] : records_) {
    if (record.cert->IsCa()) {
      record.valid = roots_.Contains(*record.cert) ||
                     std::any_of(intermediate_set_.begin(),
                                 intermediate_set_.end(),
                                 [&](const x509::CertPtr& c) {
                                   return c->Fingerprint() == record.cert->Fingerprint();
                                 });
      continue;
    }
    record.valid =
        x509::VerifyChain(record.cert, intermediates, roots_, options).ok();
  }
}

std::vector<const CertRecord*> Pipeline::LeafSet() const {
  std::vector<const CertRecord*> out;
  for (const auto& [fp, record] : records_) {
    if (record.valid && !record.cert->IsCa()) out.push_back(&record);
  }
  return out;
}

}  // namespace rev::core
