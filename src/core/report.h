// Plain-text report rendering: aligned tables and (x, y) series in the
// shape the paper's tables and figures use.
#pragma once

#include <string>
#include <vector>

namespace rev::core {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// A printable data series (one figure line).
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

// Renders one or more series as aligned columns: x then one column per
// series (points are matched by index; series must be equally sampled).
std::string RenderSeries(const std::string& x_label,
                         const std::vector<Series>& series,
                         int max_rows = 0 /* 0 = all */);

std::string FormatDouble(double v, int precision = 4);

}  // namespace rev::core
