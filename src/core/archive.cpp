#include "core/archive.h"

#include <cstdio>

namespace rev::core {

namespace {

constexpr char kMagic[4] = {'R', 'V', 'K', 'A'};
constexpr std::uint32_t kVersion = 1;

void PutU32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutI64(Bytes& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
}

bool GetU32(BytesView data, std::size_t& pos, std::uint32_t* v) {
  if (pos + 4 > data.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v = (*v << 8) | data[pos++];
  return true;
}

bool GetI64(BytesView data, std::size_t& pos, std::int64_t* v) {
  if (pos + 8 > data.size()) return false;
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i) u = (u << 8) | data[pos++];
  *v = static_cast<std::int64_t>(u);
  return true;
}

}  // namespace

std::uint32_t ScanArchive::Intern(const x509::CertPtr& cert) {
  auto [it, inserted] = index_by_fingerprint_.try_emplace(
      cert->Fingerprint(), static_cast<std::uint32_t>(certs_.size()));
  if (inserted) certs_.push_back(cert);
  return it->second;
}

void ScanArchive::AddSnapshot(const scan::CertScanSnapshot& snapshot) {
  Snapshot stored;
  stored.time = snapshot.time;
  stored.observations.reserve(snapshot.observations.size());
  for (const scan::CertObservation& obs : snapshot.observations) {
    Observation o;
    o.ip = obs.ip;
    o.chain.reserve(obs.chain.size());
    for (const x509::CertPtr& cert : obs.chain) {
      if (cert) o.chain.push_back(Intern(cert));
    }
    stored.observations.push_back(std::move(o));
  }
  snapshots_.push_back(std::move(stored));
}

std::vector<scan::CertScanSnapshot> ScanArchive::Snapshots() const {
  std::vector<scan::CertScanSnapshot> out;
  out.reserve(snapshots_.size());
  for (const Snapshot& stored : snapshots_) {
    scan::CertScanSnapshot snapshot;
    snapshot.time = stored.time;
    snapshot.observations.reserve(stored.observations.size());
    for (const Observation& o : stored.observations) {
      scan::CertObservation obs;
      obs.ip = o.ip;
      for (std::uint32_t index : o.chain) obs.chain.push_back(certs_[index]);
      snapshot.observations.push_back(std::move(obs));
    }
    out.push_back(std::move(snapshot));
  }
  return out;
}

Bytes ScanArchive::Serialize() const {
  Bytes out;
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  PutU32(out, kVersion);
  PutU32(out, static_cast<std::uint32_t>(certs_.size()));
  for (const x509::CertPtr& cert : certs_) {
    PutU32(out, static_cast<std::uint32_t>(cert->der.size()));
    Append(out, cert->der);
  }
  PutU32(out, static_cast<std::uint32_t>(snapshots_.size()));
  for (const Snapshot& snapshot : snapshots_) {
    PutI64(out, snapshot.time);
    PutU32(out, static_cast<std::uint32_t>(snapshot.observations.size()));
    for (const Observation& o : snapshot.observations) {
      PutU32(out, o.ip);
      PutU32(out, static_cast<std::uint32_t>(o.chain.size()));
      for (std::uint32_t index : o.chain) PutU32(out, index);
    }
  }
  return out;
}

std::optional<ScanArchive> ScanArchive::Deserialize(BytesView data) {
  std::size_t pos = 0;
  if (data.size() < 8) return std::nullopt;
  for (char c : kMagic)
    if (data[pos++] != static_cast<std::uint8_t>(c)) return std::nullopt;
  std::uint32_t version;
  if (!GetU32(data, pos, &version) || version != kVersion) return std::nullopt;

  ScanArchive archive;
  std::uint32_t cert_count;
  if (!GetU32(data, pos, &cert_count)) return std::nullopt;
  archive.certs_.reserve(cert_count);
  for (std::uint32_t i = 0; i < cert_count; ++i) {
    std::uint32_t len;
    if (!GetU32(data, pos, &len) || pos + len > data.size())
      return std::nullopt;
    auto cert = x509::ParseCertificate(data.subspan(pos, len));
    if (!cert) return std::nullopt;
    pos += len;
    auto ptr = std::make_shared<const x509::Certificate>(*std::move(cert));
    archive.index_by_fingerprint_.emplace(
        ptr->Fingerprint(), static_cast<std::uint32_t>(archive.certs_.size()));
    archive.certs_.push_back(std::move(ptr));
  }

  std::uint32_t snapshot_count;
  if (!GetU32(data, pos, &snapshot_count)) return std::nullopt;
  archive.snapshots_.reserve(snapshot_count);
  for (std::uint32_t s = 0; s < snapshot_count; ++s) {
    Snapshot snapshot;
    std::uint32_t observation_count;
    if (!GetI64(data, pos, &snapshot.time) ||
        !GetU32(data, pos, &observation_count))
      return std::nullopt;
    snapshot.observations.reserve(observation_count);
    for (std::uint32_t i = 0; i < observation_count; ++i) {
      Observation o;
      std::uint32_t chain_len;
      if (!GetU32(data, pos, &o.ip) || !GetU32(data, pos, &chain_len))
        return std::nullopt;
      o.chain.reserve(chain_len);
      for (std::uint32_t c = 0; c < chain_len; ++c) {
        std::uint32_t index;
        if (!GetU32(data, pos, &index) || index >= archive.certs_.size())
          return std::nullopt;
        o.chain.push_back(index);
      }
      snapshot.observations.push_back(std::move(o));
    }
    archive.snapshots_.push_back(std::move(snapshot));
  }
  if (pos != data.size()) return std::nullopt;
  return archive;
}

bool ScanArchive::SaveToFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const Bytes data = Serialize();
  const bool ok = std::fwrite(data.data(), 1, data.size(), file) == data.size();
  std::fclose(file);
  return ok;
}

std::optional<ScanArchive> ScanArchive::LoadFromFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  Bytes data;
  std::uint8_t buffer[65536];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
    data.insert(data.end(), buffer, buffer + n);
  std::fclose(file);
  return Deserialize(data);
}

}  // namespace rev::core
