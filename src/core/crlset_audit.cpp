#include "core/crlset_audit.h"

#include <algorithm>

namespace rev::core {

CrlsetAuditor::CrlsetAuditor(Ecosystem* eco, crlset::GeneratorConfig config)
    : eco_(eco), config_(config) {}

void CrlsetAuditor::RunDaily(util::Timestamp start, util::Timestamp end,
                             const Options& options) {
  bool removal_done = false;
  for (util::Timestamp day = start; day <= end; day += util::kSecondsPerDay) {
    if (options.parent_removal_date && !removal_done &&
        day >= *options.parent_removal_date) {
      eco_->SetGoogleCrawled(options.parent_removal_ca, false);
      removal_done = true;
    }

    DayRecord record;
    record.day = day;

    // Track every CRL entry across ALL CAs (Fig. 9's upper line). CRLs that
    // have not been re-issued since the last visit are skipped — big
    // off-web CRLs refresh weekly and scanning them daily would dominate.
    for (std::size_t ca_index = 0; ca_index < eco_->cas().size(); ++ca_index) {
      const Ecosystem::CaEntry& entry = eco_->cas()[ca_index];
      const Bytes parent = entry.ca->cert()->SubjectSpkiSha256();
      for (int shard = 0; shard < entry.spec.num_crls; ++shard) {
        const crl::Crl& crl = entry.ca->GetCrl(shard, day);
        const auto shard_key = std::make_pair(ca_index, shard);
        auto seen_it = last_seen_crl_number_.find(shard_key);
        if (seen_it != last_seen_crl_number_.end() &&
            seen_it->second == crl.tbs.crl_number)
          continue;
        last_seen_crl_number_[shard_key] = crl.tbs.crl_number;
        for (const crl::CrlEntry& crl_entry : crl.tbs.entries) {
          auto [it, inserted] =
              tracks_.try_emplace(std::make_pair(parent, crl_entry.serial));
          if (inserted) {
            it->second.first_in_crl = day;
            it->second.cert_expiry = entry.ca->ExpiryOf(crl_entry.serial);
            ++record.crl_new_entries;
          }
        }
      }
    }

    const bool in_outage =
        options.outage_start && options.outage_end &&
        day >= *options.outage_start && day < *options.outage_end;

    if (!in_outage) {
      const std::vector<crlset::CrlSource> sources = eco_->CrlSetSources(day);
      crlset::CrlSet next =
          crlset::GenerateCrlSet(sources, config_, ++sequence_);

      // Additions.
      for (const auto& [parent, serials] : next.parents()) {
        for (const x509::Serial& serial : serials) {
          auto [it, inserted] =
              tracks_.try_emplace(std::make_pair(parent, serial));
          EntryTrack& track = it->second;
          if (inserted) track.first_in_crl = day;
          if (track.first_in_crlset == 0) {
            track.first_in_crlset = day;
            ++record.crlset_new_entries;
          }
          track.left_crlset = 0;  // (re)present
        }
      }
      // Removals: entries in the previous set absent from the new one.
      for (const auto& [parent, serials] : latest_.parents()) {
        for (const x509::Serial& serial : serials) {
          if (next.IsRevoked(parent, serial)) continue;
          auto it = tracks_.find(std::make_pair(parent, serial));
          if (it != tracks_.end() && it->second.left_crlset == 0)
            it->second.left_crlset = day;
        }
      }
      latest_ = std::move(next);
    }

    record.crlset_entries = latest_.NumEntries();
    days_.push_back(record);
  }
}

util::Distribution CrlsetAuditor::DaysToAppear() const {
  util::Distribution dist;
  for (const auto& [key, track] : tracks_) {
    if (track.first_in_crlset == 0) continue;
    const double days = static_cast<double>(track.first_in_crlset -
                                            track.first_in_crl) /
                        static_cast<double>(util::kSecondsPerDay);
    dist.Add(std::max(days, 0.0) + 1.0);  // same-day discovery counts as 1
  }
  return dist;
}

util::Distribution CrlsetAuditor::RemovalToExpiryDays() const {
  util::Distribution dist;
  for (const auto& [key, track] : tracks_) {
    if (track.left_crlset == 0 || track.cert_expiry == 0) continue;
    if (track.cert_expiry <= track.left_crlset) continue;  // expiry removal
    dist.Add(static_cast<double>(track.cert_expiry - track.left_crlset) /
             static_cast<double>(util::kSecondsPerDay));
  }
  return dist;
}

CrlsetAuditor::CoverageCdf CrlsetAuditor::ComputeCoverageCdf(
    util::Timestamp now) {
  CoverageCdf cdf;
  for (const Ecosystem::CaEntry& entry : eco_->cas()) {
    const Bytes parent = entry.ca->cert()->SubjectSpkiSha256();
    for (int shard = 0; shard < entry.spec.num_crls; ++shard) {
      const crl::Crl& crl = entry.ca->GetCrl(shard, now);
      ++cdf.total_crls;
      if (crl.tbs.entries.empty()) continue;
      std::size_t present = 0, eligible = 0;
      for (const crl::CrlEntry& crl_entry : crl.tbs.entries) {
        if (crlset::IsCrlSetReasonCode(crl_entry.reason)) ++eligible;
        if (latest_.IsRevoked(parent, crl_entry.serial)) ++present;
      }
      if (present == 0) continue;
      ++cdf.covered_crls;
      cdf.all_entries.Add(static_cast<double>(present) /
                          static_cast<double>(crl.tbs.entries.size()));
      if (eligible > 0)
        cdf.reason_coded.Add(static_cast<double>(present) /
                             static_cast<double>(eligible));
    }
  }
  return cdf;
}

CrlsetAuditor::CoverageStats CrlsetAuditor::ComputeCoverage(
    util::Timestamp now, const Pipeline& pipeline,
    const RevocationCrawler& crawler) {
  CoverageStats stats;
  std::size_t total_entries = 0;
  (void)eco_->CrlSetSources(now, &total_entries);
  stats.total_revocations = total_entries;
  stats.crlset_entries = latest_.NumEntries();
  stats.total_parents = eco_->cas().size();
  stats.covered_parents = latest_.NumParents();

  const CoverageCdf cdf = ComputeCoverageCdf(now);
  stats.covered_crls = cdf.covered_crls;
  stats.total_crls = cdf.total_crls;

  // Alexa-tier coverage: for revoked Leaf Set certs, is the revocation in
  // the CRLSet?
  std::map<std::string, Bytes> parent_by_ca;
  for (const Ecosystem::CaEntry& entry : eco_->cas())
    parent_by_ca[entry.spec.name] = entry.ca->cert()->SubjectSpkiSha256();

  const CertCorpus& corpus = pipeline.corpus();
  // URL id -> CA name, resolved once per distinct URL.
  std::vector<std::string> name_memo(corpus.num_urls());
  std::vector<bool> name_resolved(corpus.num_urls(), false);
  auto name_for = [&](std::uint32_t url_id) -> const std::string& {
    if (!name_resolved[url_id]) {
      name_resolved[url_id] = true;
      name_memo[url_id] = eco_->CaNameForUrl(std::string(corpus.url(url_id)));
    }
    return name_memo[url_id];
  };
  for (const CertCorpus::Row row : pipeline.LeafSet()) {
    const BytesView issuer = corpus.name_der(corpus.issuer_id(row));
    const BytesView serial_view = corpus.serial(row);
    if (!crawler.db().Lookup(issuer, serial_view)) continue;
    const Bytes fp(corpus.fingerprint(row).begin(),
                   corpus.fingerprint(row).end());
    const PopularityTier tier = eco_->TierOf(fp);
    if (tier == PopularityTier::kOther) continue;

    std::string ca_name;
    for (const std::uint32_t url_id : corpus.crl_url_ids(row)) {
      ca_name = name_for(url_id);
      if (!ca_name.empty()) break;
    }
    const x509::Serial serial(serial_view.begin(), serial_view.end());
    auto parent_it = parent_by_ca.find(ca_name);
    const bool in_crlset = parent_it != parent_by_ca.end() &&
                           latest_.IsRevoked(parent_it->second, serial);

    if (tier == PopularityTier::kTop1k) {
      ++stats.top1k_revoked;
      if (in_crlset) ++stats.top1k_in_crlset;
    }
    // Top 1k is a subset of top 1M in the paper's framing.
    ++stats.top1m_revoked;
    if (in_crlset) ++stats.top1m_in_crlset;
  }
  return stats;
}

}  // namespace rev::core
