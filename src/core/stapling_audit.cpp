#include "core/stapling_audit.h"

#include <map>

namespace rev::core {

StaplingStats ComputeStaplingStats(const scan::HandshakeScanSnapshot& scan) {
  StaplingStats stats;
  struct CertAgg {
    bool ev = false;
    std::uint64_t servers = 0;
    std::uint64_t stapled = 0;
  };
  std::map<Bytes, CertAgg> per_cert;

  for (const scan::HandshakeObservation& obs : scan.observations) {
    if (!obs.leaf || !obs.leaf->IsFresh(scan.time)) continue;
    ++stats.servers_total;
    if (obs.sent_staple) ++stats.servers_stapled;
    CertAgg& agg = per_cert[obs.leaf->Fingerprint()];
    agg.ev = obs.leaf->IsEv();
    ++agg.servers;
    if (obs.sent_staple) ++agg.stapled;
  }

  for (const auto& [fp, agg] : per_cert) {
    ++stats.fresh_certs;
    const bool any = agg.stapled > 0;
    const bool all = agg.stapled == agg.servers;
    if (any) ++stats.certs_any_staple;
    if (any && all) ++stats.certs_all_staple;
    if (agg.ev) {
      ++stats.ev_fresh_certs;
      if (any) ++stats.ev_certs_any_staple;
      if (any && all) ++stats.ev_certs_all_staple;
    }
  }
  return stats;
}

std::vector<double> StaplingRepeatCurve(scan::Internet& internet,
                                        util::Timestamp t, int max_requests,
                                        std::size_t sample,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::size_t> alive;
  for (std::size_t i = 0; i < internet.size(); ++i) {
    if (internet.server(i).AliveAt(t)) alive.push_back(i);
  }
  // Partial Fisher–Yates to pick `sample` distinct servers.
  const std::size_t take = std::min(sample, alive.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.NextBelow(alive.size() - i));
    std::swap(alive[i], alive[j]);
  }

  std::vector<std::size_t> first_staple_at(static_cast<std::size_t>(max_requests) + 1, 0);
  std::size_t ever_stapled = 0;
  for (std::size_t i = 0; i < take; ++i) {
    const int attempts = scan::AttemptsUntilStaple(internet.server(alive[i]),
                                                   t, max_requests);
    if (attempts > 0) {
      ++ever_stapled;
      ++first_staple_at[static_cast<std::size_t>(attempts)];
    }
  }

  std::vector<double> curve;
  std::size_t cumulative = 0;
  for (int n = 1; n <= max_requests; ++n) {
    cumulative += first_staple_at[static_cast<std::size_t>(n)];
    curve.push_back(ever_stapled ? static_cast<double>(cumulative) /
                                       static_cast<double>(ever_stapled)
                                 : 0);
  }
  return curve;
}

}  // namespace rev::core
