// The paper-scale certificate store (ROADMAP item 2): a struct-of-arrays
// columnar corpus replacing Pipeline's node-per-cert std::map<Bytes,
// CertRecord> of heap CertPtrs.
//
// Layout (docs/corpus.md has the full diagram and invariants):
//   - DER bytes live in a util::Arena (chunked, pointer-stable: views never
//     dangle as rows are appended);
//   - tbs/signature/serial are offsets into each row's arena block, not
//     copies;
//   - issuer/subject name DER and CRL/OCSP URLs are interned
//     (util::StringInterner) — columns hold 4-byte ids;
//   - lifetimes/observations/flags are fixed-width columns, contiguous for
//     ParallelFor;
//   - a fingerprint-keyed open-addressing index (FingerprintIndex) maps
//     SHA-256 fingerprints to rows;
//   - the "in latest scan" view is epoch-based: starting a newer scan is one
//     counter bump, not an O(rows) flag sweep.
//
// Certificate *objects* are materialized lazily: cert(row) re-parses the
// arena DER on demand and caches the result (used for the few hundred CA
// rows and cold paths like OCSP queries; the analyses read columns).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/fingerprint_index.h"
#include "util/arena.h"
#include "util/bytes.h"
#include "util/interner.h"
#include "util/time.h"
#include "x509/certificate.h"
#include "x509/verify.h"
#include "x509/view.h"

namespace rev::core {

class CertCorpus {
 public:
  using Row = std::uint32_t;
  static constexpr Row kNoRow = 0xFFFF'FFFFu;

  // Interns a parsed certificate (dedup by fingerprint); returns its row.
  Row Intern(const x509::CertPtr& cert);

  // Interns raw DER (the streaming-ingest path): view-parses, dedups, and
  // copies into the arena. Returns kNoRow on malformed input, leaving the
  // corpus untouched (fuzz-tested invariant).
  Row InternDer(BytesView der);

  // Row for a fingerprint, or kNoRow.
  Row Find(BytesView fingerprint) const;

  std::size_t size() const { return refs_.size(); }

  // Identity / bytes ---------------------------------------------------------
  BytesView fingerprint(Row r) const {
    return {fps_.data() + std::size_t{r} * 32, 32};
  }
  BytesView der(Row r) const {
    const DerRef& ref = refs_[r];
    return {ref.base, ref.der_len};
  }
  BytesView tbs_der(Row r) const {
    const DerRef& ref = refs_[r];
    return {ref.base + ref.tbs_off, ref.tbs_len};
  }
  BytesView signature(Row r) const {
    const DerRef& ref = refs_[r];
    return {ref.base + ref.sig_off, ref.sig_len};
  }
  BytesView serial(Row r) const {
    const DerRef& ref = refs_[r];
    return {ref.base + ref.serial_off, ref.serial_len};
  }
  crypto::KeyType sig_type(Row r) const {
    return static_cast<crypto::KeyType>(sig_type_[r]);
  }

  // Interned names / URLs ----------------------------------------------------
  std::uint32_t issuer_id(Row r) const { return issuer_id_[r]; }
  std::uint32_t subject_id(Row r) const { return subject_id_[r]; }
  BytesView name_der(std::uint32_t name_id) const {
    return names_.GetBytes(name_id);
  }
  std::size_t num_names() const { return names_.size(); }
  // Id for a name DER if interned (i.e. referenced by any row), else
  // util::StringInterner::kInvalidId.
  std::uint32_t FindName(BytesView name_der) const {
    return names_.Find(name_der);
  }

  std::span<const std::uint32_t> crl_url_ids(Row r) const {
    const UrlRef& ref = url_ref_[r];
    return {url_pool_.data() + ref.offset, ref.num_crl};
  }
  std::span<const std::uint32_t> ocsp_url_ids(Row r) const {
    const UrlRef& ref = url_ref_[r];
    return {url_pool_.data() + ref.offset + ref.num_crl, ref.num_ocsp};
  }
  std::string_view url(std::uint32_t url_id) const { return urls_.Get(url_id); }
  std::size_t num_urls() const { return urls_.size(); }

  // Fixed-width columns ------------------------------------------------------
  util::Timestamp not_before(Row r) const { return not_before_[r]; }
  util::Timestamp not_after(Row r) const { return not_after_[r]; }
  bool is_ca(Row r) const { return (flags_[r] & kFlagCa) != 0; }
  bool is_ev(Row r) const { return (flags_[r] & kFlagEv) != 0; }

  bool valid(Row r) const { return valid_[r] != 0; }
  // Per-row byte column: safe for concurrent ParallelFor writers that each
  // own disjoint rows.
  void set_valid(Row r, bool v) { valid_[r] = v ? 1 : 0; }

  util::Timestamp first_seen(Row r) const { return first_seen_[r]; }
  util::Timestamp last_seen(Row r) const { return last_seen_[r]; }
  std::uint64_t observations(Row r) const { return observations_[r]; }
  bool in_latest_scan(Row r) const {
    return latest_epoch_[r] == current_epoch_;
  }

  // Ingest mutators (driven by Pipeline) -------------------------------------
  // Folds a sighting at `t` (> 0) into the lifetime columns.
  void FoldSeen(Row r, util::Timestamp t) {
    if (first_seen_[r] == 0 || t < first_seen_[r]) first_seen_[r] = t;
    if (t > last_seen_[r]) last_seen_[r] = t;
  }
  void AddLeafObservation(Row r) { ++observations_[r]; }
  void MarkInLatestScan(Row r) { latest_epoch_[r] = current_epoch_; }
  // O(1) clear of the latest-scan view (every row's membership lapses).
  void AdvanceLatestScan() { ++current_epoch_; }

  // Lazy materialization -----------------------------------------------------
  // Full Certificate for a row, re-parsed from arena DER and cached.
  // Thread-safe; returns nullptr only if the stored DER fails the full parse
  // (cannot happen for rows interned from parsed certificates).
  x509::CertPtr cert(Row r) const;

  // All rows sorted by fingerprint bytes — the iteration order of the
  // std::map<Bytes, CertRecord> this store replaced, so downstream results
  // stay byte-identical. Cached between ingests (analyses call this per
  // pass); recomputed lazily when rows have been appended since.
  std::vector<Row> RowsByFingerprint() const;

  // Memory accounting --------------------------------------------------------
  std::size_t arena_bytes() const { return arena_.bytes_used(); }
  std::size_t column_bytes() const;
  std::size_t index_bytes() const { return index_.bytes(); }
  std::size_t interner_bytes() const {
    return names_.arena_bytes() + urls_.arena_bytes();
  }

  // Structural invariants (fingerprints match stored DER, offsets in
  // bounds, index agrees, columns aligned). O(rows); for tests.
  bool CheckInvariants() const;

 private:
  static constexpr std::uint8_t kFlagCa = 1;
  static constexpr std::uint8_t kFlagEv = 2;

  // One arena block per row: [der | fallback tbs | fallback sig | fallback
  // serial]. On the fast path tbs/sig/serial alias ranges *inside* der and
  // the block is just the DER; the fallback (view-parse failed but a full
  // parse exists) appends the pieces after it.
  struct DerRef {
    const std::uint8_t* base = nullptr;
    std::uint32_t der_len = 0;
    std::uint32_t tbs_off = 0;
    std::uint32_t tbs_len = 0;
    std::uint32_t sig_off = 0;
    std::uint32_t serial_off = 0;
    std::uint16_t sig_len = 0;
    std::uint16_t serial_len = 0;
  };
  struct UrlRef {
    std::uint32_t offset = 0;
    std::uint16_t num_crl = 0;
    std::uint16_t num_ocsp = 0;
  };

  Row AppendRow(BytesView fingerprint, const DerRef& ref,
                const x509::CertView& view);
  UrlRef InternUrlLists(const std::vector<std::uint32_t>& crl_ids,
                        const std::vector<std::uint32_t>& ocsp_ids);

  util::Arena arena_;
  std::vector<std::uint8_t> fps_;  // 32 bytes per row, flat
  std::vector<DerRef> refs_;
  std::vector<std::uint32_t> issuer_id_;
  std::vector<std::uint32_t> subject_id_;
  std::vector<UrlRef> url_ref_;
  std::vector<std::uint32_t> url_pool_;
  std::vector<std::int64_t> not_before_;
  std::vector<std::int64_t> not_after_;
  std::vector<std::int64_t> first_seen_;
  std::vector<std::int64_t> last_seen_;
  std::vector<std::uint64_t> observations_;
  std::vector<std::uint32_t> latest_epoch_;
  std::vector<std::uint8_t> sig_type_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint8_t> valid_;
  std::uint32_t current_epoch_ = 1;

  FingerprintIndex index_;
  util::StringInterner names_;
  util::StringInterner urls_;
  // (crl ids, ocsp ids) -> shared pool segment; most rows share a handful
  // of distinct URL lists.
  std::map<std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>,
           UrlRef>
      url_list_cache_;

  mutable std::mutex cert_mu_;
  mutable std::map<Row, x509::CertPtr> cert_cache_;
  // Cache for RowsByFingerprint; stale iff its length differs from size()
  // (rows are append-only, fingerprints immutable). Not guarded: callers
  // never read the sorted order concurrently with ingest.
  mutable std::vector<Row> sorted_rows_;
};

}  // namespace rev::core
