// The revocation crawler (§3.2): downloads every CRL distribution point
// named by the Leaf and Intermediate Sets once per day over the simulated
// network, and queries OCSP responders for the certificates that carry no
// CRL pointer. Builds a revocation database keyed by (issuer name, serial).
//
// CrawlAll() fans fetch+parse out per URL across a util::ThreadPool and
// merges the per-URL results into `crawled_` / the revocation database in
// URL-sorted order, so the database, the counters, and the Fig. 5/6/9
// series are byte-identical at every thread count (docs/parallelism.md).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/revocation_db.h"
#include "crl/crl.h"
#include "net/cache.h"
#include "net/simnet.h"
#include "ocsp/ocsp.h"
#include "util/thread_pool.h"
#include "x509/certificate.h"

namespace rev::core {

// Snapshot of one crawled CRL.
struct CrawledCrl {
  std::string url;
  Bytes issuer_name_der;
  std::size_t size_bytes = 0;
  std::size_t num_entries = 0;
  util::Timestamp this_update = 0;
  util::Timestamp next_update = 0;
  // Latest parsed body, kept for CRLSet generation.
  crl::Crl crl;

  // Degradation state (docs/fault-injection.md): when a crawl exhausts its
  // retries for this URL, the last good snapshot above keeps serving and is
  // marked stale with honest age accounting — the per-URL staleness series
  // feeding the Fig. 10 vulnerability-window analysis.
  bool stale = false;
  std::uint64_t stale_crawls = 0;        // lifetime count of stale serves
  util::Timestamp last_good_fetch = 0;   // crawl time of the snapshot above
  std::int64_t stale_age_seconds = 0;    // now - last_good_fetch, last crawl
};

class RevocationCrawler {
 public:
  // `threads` sizes the CrawlAll() fan-out: 0 = hardware concurrency,
  // 1 = the exact serial path.
  explicit RevocationCrawler(net::SimNet* net, unsigned threads = 0);

  // Registers the CRL URLs of every certificate in the pipeline's Leaf and
  // Intermediate sets. Call once after Pipeline::Finalize().
  void CollectUrls(const Pipeline& pipeline);

  void AddUrl(const std::string& url);

  // Crawls all registered CRLs at `now` (honoring HTTP cache lifetimes via
  // nextUpdate). Returns the number of *new* revocation entries discovered.
  std::size_t CrawlAll(util::Timestamp now);

  // Queries the OCSP responder for one certificate (used for the 642
  // CRL-less certificates, §3.2). Requires the issuer certificate.
  std::optional<ocsp::CertStatus> QueryOcsp(const x509::Certificate& cert,
                                            const x509::Certificate& issuer,
                                            util::Timestamp now);

  // Lookup: revocation info for (issuer, serial), or nullptr.
  const RevocationInfo* Lookup(const x509::Name& issuer,
                               const x509::Serial& serial) const;

  const std::map<std::string, CrawledCrl>& crawled() const { return crawled_; }
  // The full revocation database, keyed (issuer name DER, serial) — exposed
  // so determinism tests can compare two crawls byte for byte. Same map
  // type and iteration order as before the RevocationDb extraction.
  const RevocationDb::Map& revocations() const { return db_.entries(); }
  // The database itself, for analyses that run against a RevocationDb
  // directly (Table 1 / timeline / CRLSet columnar overloads).
  const RevocationDb& db() const { return db_; }
  std::size_t total_revocations() const;

  // §4.2: histogram of CRL reason codes across all discovered revocations
  // (the paper finds the vast majority carry no reason code at all).
  std::map<x509::ReasonCode, std::size_t> ReasonCodeHistogram() const;

  // Bandwidth/latency spent crawling (§5.2 cost analysis). These are
  // *simulated* network costs and are merged deterministically, so they
  // match the serial run bit for bit.
  std::uint64_t bytes_downloaded() const { return bytes_downloaded_; }
  double seconds_spent() const { return seconds_spent_; }
  std::uint64_t fetch_failures() const { return fetch_failures_; }

  // Resilience (docs/fault-injection.md): retry policy applied to every
  // CRL/OCSP exchange. Change it before crawling; the default retries
  // transient failures a few times with minutes-scale caps (a daily crawl
  // can afford to wait out a 5xx burst).
  const net::RetryPolicy& retry_policy() const { return retry_policy_; }
  void set_retry_policy(const net::RetryPolicy& policy) {
    retry_policy_ = policy;
  }

  // Degradation/retry accounting, merged deterministically like the cost
  // counters above. `retries()` counts extra attempts beyond the first;
  // `stale_served()` counts crawls where a URL fell back to its last good
  // snapshot; `url_failures()` is the per-URL failed-crawl series
  // (including URLs that never produced a snapshot at all).
  std::uint64_t retries() const { return retries_; }
  std::uint64_t stale_served() const { return stale_served_; }
  const std::map<std::string, std::uint64_t>& url_failures() const {
    return url_failures_;
  }

  unsigned threads() const { return threads_; }
  void set_threads(unsigned threads);

  // Cost accounting: real wall time spent inside CrawlAll() across all
  // visits (the parallel-speedup counterpart of seconds_spent()).
  double crawl_wall_seconds() const { return crawl_wall_seconds_; }

 private:
  net::SimNet* net_;
  net::CachingClient client_;
  unsigned threads_;
  std::unique_ptr<util::ThreadPool> pool_;  // created on first CrawlAll
  std::set<std::string> urls_;
  std::map<std::string, CrawledCrl> crawled_;
  RevocationDb db_;
  std::uint64_t bytes_downloaded_ = 0;
  double seconds_spent_ = 0;
  std::uint64_t fetch_failures_ = 0;
  double crawl_wall_seconds_ = 0;
  net::RetryPolicy retry_policy_ = DefaultRetryPolicy();
  std::uint64_t retries_ = 0;
  std::uint64_t stale_served_ = 0;
  std::map<std::string, std::uint64_t> url_failures_;

  static net::RetryPolicy DefaultRetryPolicy();
};

}  // namespace rev::core
