// The revocation crawler (§3.2): downloads every CRL distribution point
// named by the Leaf and Intermediate Sets once per day over the simulated
// network, and queries OCSP responders for the certificates that carry no
// CRL pointer. Builds a revocation database keyed by (issuer name, serial).
//
// CrawlAll() fans fetch+parse out per URL across a util::ThreadPool and
// merges the per-URL results into `crawled_` / the revocation database in
// URL-sorted order, so the database, the counters, and the Fig. 5/6/9
// series are byte-identical at every thread count (docs/parallelism.md).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "crl/crl.h"
#include "net/cache.h"
#include "net/simnet.h"
#include "ocsp/ocsp.h"
#include "util/thread_pool.h"
#include "x509/certificate.h"

namespace rev::core {

struct RevocationInfo {
  util::Timestamp revoked_at = 0;
  x509::ReasonCode reason = x509::ReasonCode::kNoReasonCode;
  // When the crawler first saw this entry in a CRL (for Fig. 10's
  // window-of-vulnerability analysis).
  util::Timestamp first_seen_in_crl = 0;
};

// Snapshot of one crawled CRL.
struct CrawledCrl {
  std::string url;
  Bytes issuer_name_der;
  std::size_t size_bytes = 0;
  std::size_t num_entries = 0;
  util::Timestamp this_update = 0;
  util::Timestamp next_update = 0;
  // Latest parsed body, kept for CRLSet generation.
  crl::Crl crl;
};

class RevocationCrawler {
 public:
  // `threads` sizes the CrawlAll() fan-out: 0 = hardware concurrency,
  // 1 = the exact serial path.
  explicit RevocationCrawler(net::SimNet* net, unsigned threads = 0);

  // Registers the CRL URLs of every certificate in the pipeline's Leaf and
  // Intermediate sets. Call once after Pipeline::Finalize().
  void CollectUrls(const Pipeline& pipeline);

  void AddUrl(const std::string& url);

  // Crawls all registered CRLs at `now` (honoring HTTP cache lifetimes via
  // nextUpdate). Returns the number of *new* revocation entries discovered.
  std::size_t CrawlAll(util::Timestamp now);

  // Queries the OCSP responder for one certificate (used for the 642
  // CRL-less certificates, §3.2). Requires the issuer certificate.
  std::optional<ocsp::CertStatus> QueryOcsp(const x509::Certificate& cert,
                                            const x509::Certificate& issuer,
                                            util::Timestamp now);

  // Lookup: revocation info for (issuer, serial), or nullptr.
  const RevocationInfo* Lookup(const x509::Name& issuer,
                               const x509::Serial& serial) const;

  const std::map<std::string, CrawledCrl>& crawled() const { return crawled_; }
  std::size_t total_revocations() const;

  // §4.2: histogram of CRL reason codes across all discovered revocations
  // (the paper finds the vast majority carry no reason code at all).
  std::map<x509::ReasonCode, std::size_t> ReasonCodeHistogram() const;

  // Bandwidth/latency spent crawling (§5.2 cost analysis). These are
  // *simulated* network costs and are merged deterministically, so they
  // match the serial run bit for bit.
  std::uint64_t bytes_downloaded() const { return bytes_downloaded_; }
  double seconds_spent() const { return seconds_spent_; }
  std::uint64_t fetch_failures() const { return fetch_failures_; }

  unsigned threads() const { return threads_; }
  void set_threads(unsigned threads);

  // Cost accounting: real wall time spent inside CrawlAll() across all
  // visits (the parallel-speedup counterpart of seconds_spent()).
  double crawl_wall_seconds() const { return crawl_wall_seconds_; }

 private:
  net::SimNet* net_;
  net::CachingClient client_;
  unsigned threads_;
  std::unique_ptr<util::ThreadPool> pool_;  // created on first CrawlAll
  std::set<std::string> urls_;
  std::map<std::string, CrawledCrl> crawled_;
  // (issuer name DER, serial) -> info
  std::map<std::pair<Bytes, x509::Serial>, RevocationInfo> revocations_;
  std::uint64_t bytes_downloaded_ = 0;
  double seconds_spent_ = 0;
  std::uint64_t fetch_failures_ = 0;
  double crawl_wall_seconds_ = 0;
};

}  // namespace rev::core
