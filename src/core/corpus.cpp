#include "core/corpus.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "crypto/sha256.h"

namespace rev::core {

namespace {

BytesView AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

CertCorpus::Row CertCorpus::Find(BytesView fingerprint) const {
  const std::uint64_t hash = FingerprintIndex::HashOf(fingerprint);
  return index_.Find(hash, [&](std::uint32_t row) {
    const BytesView stored = this->fingerprint(row);
    return stored.size() == fingerprint.size() &&
           std::memcmp(stored.data(), fingerprint.data(), stored.size()) == 0;
  });
}

CertCorpus::UrlRef CertCorpus::InternUrlLists(
    const std::vector<std::uint32_t>& crl_ids,
    const std::vector<std::uint32_t>& ocsp_ids) {
  auto key = std::make_pair(crl_ids, ocsp_ids);
  auto it = url_list_cache_.find(key);
  if (it != url_list_cache_.end()) return it->second;
  UrlRef ref;
  ref.offset = static_cast<std::uint32_t>(url_pool_.size());
  ref.num_crl = static_cast<std::uint16_t>(crl_ids.size());
  ref.num_ocsp = static_cast<std::uint16_t>(ocsp_ids.size());
  url_pool_.insert(url_pool_.end(), crl_ids.begin(), crl_ids.end());
  url_pool_.insert(url_pool_.end(), ocsp_ids.begin(), ocsp_ids.end());
  url_list_cache_.emplace(std::move(key), ref);
  return ref;
}

CertCorpus::Row CertCorpus::AppendRow(BytesView fingerprint, const DerRef& ref,
                                      const x509::CertView& view) {
  assert(refs_.size() < kNoRow);
  const Row row = static_cast<Row>(refs_.size());

  fps_.insert(fps_.end(), fingerprint.begin(), fingerprint.end());
  refs_.push_back(ref);

  issuer_id_.push_back(names_.Intern(view.issuer_der));
  subject_id_.push_back(names_.Intern(view.subject_der));

  std::vector<std::uint32_t> crl_ids;
  crl_ids.reserve(view.crl_urls.size());
  for (std::string_view u : view.crl_urls) crl_ids.push_back(urls_.Intern(u));
  std::vector<std::uint32_t> ocsp_ids;
  ocsp_ids.reserve(view.ocsp_urls.size());
  for (std::string_view u : view.ocsp_urls) ocsp_ids.push_back(urls_.Intern(u));
  url_ref_.push_back(InternUrlLists(crl_ids, ocsp_ids));

  not_before_.push_back(view.not_before);
  not_after_.push_back(view.not_after);
  first_seen_.push_back(0);
  last_seen_.push_back(0);
  observations_.push_back(0);
  latest_epoch_.push_back(0);
  sig_type_.push_back(static_cast<std::uint8_t>(view.sig_type));
  std::uint8_t flags = 0;
  if (view.is_ca) flags |= kFlagCa;
  if (view.is_ev) flags |= kFlagEv;
  flags_.push_back(flags);
  valid_.push_back(0);

  index_.Insert(FingerprintIndex::HashOf(fingerprint), row);
  return row;
}

CertCorpus::Row CertCorpus::Intern(const x509::CertPtr& cert) {
  const Bytes& fp = cert->Fingerprint();
  const Row existing = Find(fp);
  if (existing != kNoRow) return existing;

  const BytesView arena_der = arena_.Copy(cert->der);
  DerRef ref;
  ref.base = arena_der.data();
  ref.der_len = static_cast<std::uint32_t>(arena_der.size());

  if (auto view = x509::ParseCertView(arena_der)) {
    ref.tbs_off =
        static_cast<std::uint32_t>(view->tbs_der.data() - arena_der.data());
    ref.tbs_len = static_cast<std::uint32_t>(view->tbs_der.size());
    ref.sig_off =
        static_cast<std::uint32_t>(view->signature.data() - arena_der.data());
    ref.sig_len = static_cast<std::uint16_t>(view->signature.size());
    ref.serial_off =
        static_cast<std::uint32_t>(view->serial.data() - arena_der.data());
    ref.serial_len = static_cast<std::uint16_t>(view->serial.size());
    return AppendRow(fp, ref, *view);
  }

  // Fallback: the DER does not view-parse (hand-built Certificate objects in
  // tests can carry unparseable bytes). Append the parsed pieces behind the
  // DER in one stable block and synthesize the view from the parsed object.
  const Bytes issuer_der = cert->tbs.issuer.Encode();
  const Bytes subject_der = cert->tbs.subject.Encode();
  const std::size_t total = cert->der.size() + cert->tbs_der.size() +
                            cert->signature.size() + cert->tbs.serial.size();
  std::span<std::uint8_t> block = arena_.Allocate(total);
  std::uint8_t* p = block.data();
  auto append = [&p](const Bytes& b) {
    if (!b.empty()) std::memcpy(p, b.data(), b.size());
    p += b.size();
  };
  // The arena_der copy above is abandoned (a few hundred wasted bytes on a
  // path only tests hit); the block is self-contained.
  append(cert->der);
  append(cert->tbs_der);
  append(cert->signature);
  append(cert->tbs.serial);

  ref.base = block.data();
  ref.der_len = static_cast<std::uint32_t>(cert->der.size());
  ref.tbs_off = ref.der_len;
  ref.tbs_len = static_cast<std::uint32_t>(cert->tbs_der.size());
  ref.sig_off = ref.tbs_off + ref.tbs_len;
  ref.sig_len = static_cast<std::uint16_t>(cert->signature.size());
  ref.serial_off = ref.sig_off + ref.sig_len;
  ref.serial_len = static_cast<std::uint16_t>(cert->tbs.serial.size());

  x509::CertView view;
  view.der = BytesView{block.data(), ref.der_len};
  view.tbs_der = BytesView{block.data() + ref.tbs_off, ref.tbs_len};
  view.signature = BytesView{block.data() + ref.sig_off, ref.sig_len};
  view.serial = BytesView{block.data() + ref.serial_off, ref.serial_len};
  view.issuer_der = issuer_der;
  view.subject_der = subject_der;
  view.not_before = cert->tbs.not_before;
  view.not_after = cert->tbs.not_after;
  view.sig_type = cert->sig_type;
  view.is_ca = cert->IsCa();
  view.is_ev = cert->IsEv();
  for (const std::string& u : cert->tbs.crl_urls) view.crl_urls.push_back(u);
  for (const std::string& u : cert->tbs.ocsp_urls) view.ocsp_urls.push_back(u);
  return AppendRow(fp, ref, view);
}

CertCorpus::Row CertCorpus::InternDer(BytesView der) {
  // Validate against the caller's buffer BEFORE touching any corpus state:
  // a rejected certificate must leave the store bit-identical.
  const auto probe = x509::ParseCertView(der);
  if (!probe) return kNoRow;

  const crypto::Sha256Digest digest = crypto::Sha256::Hash(der);
  const BytesView fp{digest.data(), digest.size()};
  const Row existing = Find(fp);
  if (existing != kNoRow) return existing;

  const BytesView arena_der = arena_.Copy(der);
  // Rebase the views onto the arena copy by offset arithmetic — the copy is
  // byte-identical, so no second parse is needed.
  const auto off = [&](BytesView field) {
    return static_cast<std::uint32_t>(field.data() - der.data());
  };
  DerRef ref;
  ref.base = arena_der.data();
  ref.der_len = static_cast<std::uint32_t>(arena_der.size());
  ref.tbs_off = off(probe->tbs_der);
  ref.tbs_len = static_cast<std::uint32_t>(probe->tbs_der.size());
  ref.sig_off = off(probe->signature);
  ref.sig_len = static_cast<std::uint16_t>(probe->signature.size());
  ref.serial_off = off(probe->serial);
  ref.serial_len = static_cast<std::uint16_t>(probe->serial.size());

  x509::CertView view = *probe;
  view.der = arena_der;
  view.tbs_der = BytesView{arena_der.data() + ref.tbs_off, ref.tbs_len};
  view.signature = BytesView{arena_der.data() + ref.sig_off, ref.sig_len};
  view.serial = BytesView{arena_der.data() + ref.serial_off, ref.serial_len};
  // issuer/subject/url views still alias the caller buffer; AppendRow interns
  // (copies) them, so that is safe.
  return AppendRow(fp, ref, view);
}

x509::CertPtr CertCorpus::cert(Row r) const {
  {
    std::lock_guard<std::mutex> lock(cert_mu_);
    auto it = cert_cache_.find(r);
    if (it != cert_cache_.end()) return it->second;
  }
  auto parsed = x509::ParseCertificate(der(r));
  x509::CertPtr ptr =
      parsed ? std::make_shared<const x509::Certificate>(*std::move(parsed))
             : nullptr;
  std::lock_guard<std::mutex> lock(cert_mu_);
  auto [it, inserted] = cert_cache_.emplace(r, std::move(ptr));
  return it->second;
}

std::vector<CertCorpus::Row> CertCorpus::RowsByFingerprint() const {
  // The sorted order is cached: at paper scale every analysis pass calls
  // LeafSet(), and re-sorting 38M rows each time would dominate. AppendRow
  // invalidates the cache; not safe against concurrent ingest (no reader of
  // this order runs during ingest).
  if (sorted_rows_.size() != size()) {
    std::vector<Row> rows(size());
    for (Row r = 0; r < rows.size(); ++r) rows[r] = r;
    const std::uint8_t* fps = fps_.data();
    std::sort(rows.begin(), rows.end(), [fps](Row a, Row b) {
      return std::memcmp(fps + std::size_t{a} * 32, fps + std::size_t{b} * 32,
                         32) < 0;
    });
    sorted_rows_ = std::move(rows);
  }
  return sorted_rows_;
}

std::size_t CertCorpus::column_bytes() const {
  return fps_.size() + refs_.size() * sizeof(DerRef) +
         issuer_id_.size() * 4 + subject_id_.size() * 4 +
         url_ref_.size() * sizeof(UrlRef) + url_pool_.size() * 4 +
         not_before_.size() * 8 + not_after_.size() * 8 +
         first_seen_.size() * 8 + last_seen_.size() * 8 +
         observations_.size() * 8 + latest_epoch_.size() * 4 +
         sig_type_.size() + flags_.size() + valid_.size();
}

bool CertCorpus::CheckInvariants() const {
  const std::size_t n = size();
  if (fps_.size() != n * 32 || issuer_id_.size() != n ||
      subject_id_.size() != n || url_ref_.size() != n ||
      not_before_.size() != n || not_after_.size() != n ||
      first_seen_.size() != n || last_seen_.size() != n ||
      observations_.size() != n || latest_epoch_.size() != n ||
      sig_type_.size() != n || flags_.size() != n || valid_.size() != n)
    return false;
  if (index_.size() != n) return false;

  for (Row r = 0; r < n; ++r) {
    const DerRef& ref = refs_[r];
    if (ref.base == nullptr || ref.der_len == 0) return false;
    // tbs/sig/serial must land inside the row's block (der plus any
    // fallback appendix — offsets are monotone on that path).
    const std::uint64_t block_end =
        std::max<std::uint64_t>(ref.der_len,
                                std::uint64_t{ref.serial_off} + ref.serial_len);
    if (std::uint64_t{ref.tbs_off} + ref.tbs_len > block_end) return false;
    if (std::uint64_t{ref.sig_off} + ref.sig_len > block_end) return false;

    const crypto::Sha256Digest digest = crypto::Sha256::Hash(der(r));
    if (std::memcmp(digest.data(), fps_.data() + std::size_t{r} * 32, 32) != 0)
      return false;
    if (Find(BytesView{digest.data(), digest.size()}) != r) return false;

    if (issuer_id_[r] >= names_.size() || subject_id_[r] >= names_.size())
      return false;
    for (std::uint32_t id : crl_url_ids(r))
      if (id >= urls_.size()) return false;
    for (std::uint32_t id : ocsp_url_ids(r))
      if (id >= urls_.size()) return false;
    const UrlRef& uref = url_ref_[r];
    if (std::size_t{uref.offset} + uref.num_crl + uref.num_ocsp >
        url_pool_.size())
      return false;
  }

  // Interned names must round-trip through Find.
  for (std::uint32_t id = 0; id < names_.size(); ++id)
    if (names_.Find(AsBytes(names_.Get(id))) != id) return false;
  return true;
}

}  // namespace rev::core
