#include "core/timeline.h"

#include <algorithm>
#include <map>

#include "net/url.h"

namespace rev::core {

std::vector<RevocationTimelinePoint> ComputeRevocationTimeline(
    const Pipeline& pipeline, const RevocationCrawler& crawler,
    util::Timestamp start, util::Timestamp end, std::int64_t step_seconds) {
  struct CertSpan {
    util::Timestamp not_before, not_after;
    util::Timestamp birth, death;
    util::Timestamp revoked_at;  // 0 = never
    bool ev;
  };
  std::vector<CertSpan> spans;
  for (const CertRecord* record : pipeline.LeafSet()) {
    CertSpan span;
    span.not_before = record->cert->tbs.not_before;
    span.not_after = record->cert->tbs.not_after;
    span.birth = record->first_seen;
    span.death = record->last_seen;
    span.ev = record->cert->IsEv();
    const RevocationInfo* info =
        crawler.Lookup(record->cert->tbs.issuer, record->cert->tbs.serial);
    span.revoked_at = info ? info->revoked_at : 0;
    spans.push_back(span);
  }

  std::vector<RevocationTimelinePoint> points;
  for (util::Timestamp t = start; t <= end; t += step_seconds) {
    RevocationTimelinePoint point;
    point.time = t;
    for (const CertSpan& span : spans) {
      const bool revoked = span.revoked_at != 0 && span.revoked_at <= t;
      if (t >= span.not_before && t <= span.not_after) {
        ++point.fresh;
        if (revoked) ++point.fresh_revoked;
        if (span.ev) {
          ++point.fresh_ev;
          if (revoked) ++point.fresh_ev_revoked;
        }
      }
      if (t >= span.birth && t <= span.death) {
        ++point.alive;
        if (revoked) ++point.alive_revoked;
        if (span.ev) {
          ++point.alive_ev;
          if (revoked) ++point.alive_ev_revoked;
        }
      }
    }
    points.push_back(point);
  }
  return points;
}

std::vector<AdoptionPoint> ComputeRevinfoAdoption(const Pipeline& pipeline) {
  std::map<util::Timestamp, AdoptionPoint> by_month;
  for (const CertRecord* record : pipeline.LeafSet()) {
    const util::Timestamp month =
        util::StartOfMonth(record->cert->tbs.not_before);
    AdoptionPoint& point = by_month[month];
    point.month_start = month;
    ++point.issued;
    bool has_crl = false;
    for (const std::string& url : record->cert->tbs.crl_urls)
      has_crl = has_crl || net::IsFetchable(url);
    bool has_ocsp = false;
    for (const std::string& url : record->cert->tbs.ocsp_urls)
      has_ocsp = has_ocsp || net::IsFetchable(url);
    if (has_crl) ++point.with_crl;
    if (has_ocsp) ++point.with_ocsp;
  }
  std::vector<AdoptionPoint> points;
  points.reserve(by_month.size());
  for (const auto& [month, point] : by_month) points.push_back(point);
  return points;
}

}  // namespace rev::core
