#include "core/timeline.h"

#include <algorithm>
#include <map>

#include "net/url.h"

namespace rev::core {

std::vector<RevocationTimelinePoint> ComputeRevocationTimeline(
    const Pipeline& pipeline, const RevocationDb& db, util::Timestamp start,
    util::Timestamp end, std::int64_t step_seconds) {
  struct CertSpan {
    util::Timestamp not_before, not_after;
    util::Timestamp birth, death;
    util::Timestamp revoked_at;  // 0 = never
    bool ev;
  };
  const CertCorpus& corpus = pipeline.corpus();
  std::vector<CertSpan> spans;
  for (const CertCorpus::Row row : pipeline.LeafSet()) {
    CertSpan span;
    span.not_before = corpus.not_before(row);
    span.not_after = corpus.not_after(row);
    span.birth = corpus.first_seen(row);
    span.death = corpus.last_seen(row);
    span.ev = corpus.is_ev(row);
    const RevocationInfo* info =
        db.Lookup(corpus.name_der(corpus.issuer_id(row)), corpus.serial(row));
    span.revoked_at = info ? info->revoked_at : 0;
    spans.push_back(span);
  }

  std::vector<RevocationTimelinePoint> points;
  for (util::Timestamp t = start; t <= end; t += step_seconds) {
    RevocationTimelinePoint point;
    point.time = t;
    for (const CertSpan& span : spans) {
      const bool revoked = span.revoked_at != 0 && span.revoked_at <= t;
      if (t >= span.not_before && t <= span.not_after) {
        ++point.fresh;
        if (revoked) ++point.fresh_revoked;
        if (span.ev) {
          ++point.fresh_ev;
          if (revoked) ++point.fresh_ev_revoked;
        }
      }
      if (t >= span.birth && t <= span.death) {
        ++point.alive;
        if (revoked) ++point.alive_revoked;
        if (span.ev) {
          ++point.alive_ev;
          if (revoked) ++point.alive_ev_revoked;
        }
      }
    }
    points.push_back(point);
  }
  return points;
}

std::vector<AdoptionPoint> ComputeRevinfoAdoption(const Pipeline& pipeline) {
  const CertCorpus& corpus = pipeline.corpus();
  // Per-URL-id memo: each distinct interned URL is classified once.
  std::vector<std::int8_t> fetchable_memo(corpus.num_urls(), -1);
  auto any_fetchable = [&](std::span<const std::uint32_t> ids) {
    bool any = false;
    for (const std::uint32_t id : ids) {
      std::int8_t& slot = fetchable_memo[id];
      if (slot < 0)
        slot = net::IsFetchable(std::string(corpus.url(id))) ? 1 : 0;
      any = any || slot == 1;
    }
    return any;
  };
  std::map<util::Timestamp, AdoptionPoint> by_month;
  for (const CertCorpus::Row row : pipeline.LeafSet()) {
    const util::Timestamp month = util::StartOfMonth(corpus.not_before(row));
    AdoptionPoint& point = by_month[month];
    point.month_start = month;
    ++point.issued;
    if (any_fetchable(corpus.crl_url_ids(row))) ++point.with_crl;
    if (any_fetchable(corpus.ocsp_url_ids(row))) ++point.with_ocsp;
  }
  std::vector<AdoptionPoint> points;
  points.reserve(by_month.size());
  for (const auto& [month, point] : by_month) points.push_back(point);
  return points;
}

}  // namespace rev::core
