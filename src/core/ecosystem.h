// The calibrated synthetic PKI ecosystem — the workload generator standing
// in for the live Internet the paper measured (DESIGN.md substitution
// table). It creates root CAs, the Table 1 issuing CAs (plus "off-web" CRL
// populations and a tail of small CAs), issues certificates over 2011–2015,
// drives revocations (steady-state plus the Heartbleed mass event), and
// populates the simulated internet with advertising servers including
// revoked-but-alive, expired-but-alive, and OCSP-stapling behaviors.
//
// Counts are `scale` × the paper's magnitudes; structural parameters
// (CRL shard counts, serial lengths, adoption dates) are unscaled.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ca/ca.h"
#include "crlset/generator.h"
#include "net/simnet.h"
#include "scan/internet.h"
#include "util/rng.h"
#include "util/time.h"
#include "x509/verify.h"

namespace rev::core {

// Per-CA calibration, drawn from Table 1 and §5.
struct CaSpec {
  std::string name;
  int num_crls = 1;
  // Target issued-certificate count at scale = 1.
  std::size_t paper_certs = 0;
  // Steady-state revocation hazard (fraction of certs revoked per year).
  double steady_revoke_per_year = 0.01;
  // Probability a fresh certificate is revoked in the Heartbleed event.
  double heartbleed_revoke_prob = 0.12;
  int serial_bytes = 16;
  // Zipf exponent concentrating certs onto few CRL shards (0 = uniform).
  double shard_skew = 0.0;
  // Certificates issued before this date carry no OCSP responder URL.
  util::Timestamp ocsp_adoption = 0;
  // Fraction of revocations carrying a CRLSet-eligible reason code
  // (including "no reason code"); the rest use Superseded/Cessation.
  double crlset_reason_fraction = 0.9;
  // Whether Google's CRLSet crawler follows this CA's CRLs.
  bool google_crawled = false;
  // Off-web synthetic revocations at scale = 1 (e.g. Apple WWDR's 2.6M).
  std::size_t paper_offweb_revocations = 0;
  // Revoked certificates that share this CA's CRLs but are not part of the
  // scanned web population (real CRLs cover the CA's whole issuance — email
  // certs, unscanned hosts). This is what pushes certificate-weighted CRL
  // sizes far above the raw sizes (Table 1, Fig. 6): e.g. StartCom's single
  // 22 MB / 290k-entry "Free" CRL behind its 240 KB per-cert average.
  std::size_t paper_hidden_revocations = 0;
  // Fraction of this CA's certificates issued through a second-level
  // sub-CA, producing chains with two intermediates (real CAs commonly
  // issue through per-product sub-CAs; this exercises the Int. 2+ paths
  // at ecosystem scale).
  double subca_fraction = 0.0;
};

struct EcosystemConfig {
  std::uint64_t seed = 20151028;
  // Fraction of paper-scale certificate counts to generate.
  double scale = 0.004;

  util::Timestamp issuance_start = 0;   // defaults to 2011-01-01
  util::Timestamp study_start = 0;      // 2013-10-30 (first Rapid7 scan)
  util::Timestamp study_end = 0;        // 2015-03-31
  util::Timestamp crawl_start = 0;      // 2014-10-02 (daily CRL crawls)
  util::Timestamp heartbleed = 0;       // 2014-04-08

  double ev_fraction = 0.04;
  double unrevocable_fraction = 0.0009;            // neither CRL nor OCSP
  double keep_advertising_after_revoke = 0.04;     // alive-and-revoked
  double advertise_past_expiry = 0.05;             // expired-but-alive
  double stapling_cert_fraction = 0.045;           // stapling-friendly certs
  double stapling_cert_fraction_ev = 0.025;
  double staple_requires_cache_fraction = 0.45;    // nginx-like servers
  // Fraction of cache-requiring servers whose staple cache is kept warm by
  // other clients' traffic (drives Fig. 3's ~82% single-connection point).
  double staple_background_traffic = 0.75;
  double staple_fetch_success = 0.9;               // per-handshake fetch

  int num_tail_cas = 40;       // small CAs, one CRL each
  int num_roots = 3;

  // Applies the paper-period defaults for any unset timestamps.
  void ApplyDefaults();
};

// Popularity tiers standing in for Alexa ranks (§7.2).
enum class PopularityTier : std::uint8_t { kTop1k, kTop1M, kOther };

class Ecosystem {
 public:
  static std::unique_ptr<Ecosystem> Build(EcosystemConfig config);

  net::SimNet& net() { return net_; }
  scan::Internet& internet() { return internet_; }
  const x509::CertPool& roots() const { return roots_; }
  const EcosystemConfig& config() const { return config_; }

  struct CaEntry {
    CaSpec spec;
    ca::CertificateAuthority* ca = nullptr;
    // Second-level sub-CA (itself listed as its own CaEntry), or null.
    ca::CertificateAuthority* sub_ca = nullptr;
    // The CA whose certificate sits above this one (null for top-level
    // intermediates whose issuer is a root).
    ca::CertificateAuthority* parent_ca = nullptr;
    // Cross-signed variant of this CA's certificate (same subject and key,
    // signed by a different root; §2.1 footnote 3), or null. Servers
    // advertise either variant, giving leaves multiple valid paths.
    x509::CertPtr cross_cert;
  };
  const std::vector<CaEntry>& cas() const { return ca_entries_; }

  // Maps a CRL URL back to the issuing CA's display name ("" if unknown).
  std::string CaNameForUrl(const std::string& url) const;

  // CRLSet generation inputs: the CRLs (as of `now`) of google-crawled CAs.
  // CRLs are refreshed on demand. `out_total_entries` (optional) receives
  // the total entry count across ALL CAs' CRLs, crawled or not.
  std::vector<crlset::CrlSource> CrlSetSources(util::Timestamp now,
                                               std::size_t* out_total_entries = nullptr);

  PopularityTier TierOf(const Bytes& leaf_fingerprint) const;

  // Toggles whether Google's CRLSet crawler follows a CA (models the
  // "VeriSign Class 3 Extended Validation" parent removal of May–June 2014,
  // §7.3). Returns false if the CA name is unknown.
  bool SetGoogleCrawled(const std::string& ca_name, bool crawled);

  // Ground truth for calibration tests.
  std::size_t total_issued() const { return total_issued_; }
  std::size_t total_revoked() const;

 private:
  Ecosystem() = default;
  void BuildCas(util::Rng& rng);
  void IssuePopulation(util::Rng& rng);

  EcosystemConfig config_;
  net::SimNet net_;
  scan::Internet internet_;
  x509::CertPool roots_;
  std::vector<std::unique_ptr<ca::CertificateAuthority>> owned_cas_;
  std::vector<CaEntry> ca_entries_;  // issuing CAs (excludes roots)
  std::map<std::string, std::string> host_to_ca_name_;
  std::map<Bytes, PopularityTier> popularity_;
  std::size_t total_issued_ = 0;
};

// The Table 1 / §5 calibration table used by Ecosystem::Build.
std::vector<CaSpec> DefaultCaSpecs();

}  // namespace rev::core
