// CA-side measurements: dataset composition (§3), CRL sizes (Fig. 5 and
// Fig. 6), and the per-CA Table 1 statistics.
//
// The analyses read the pipeline's columnar corpus (interned URL ids, view
// serial/issuer columns) — no certificate objects are materialized. The
// primary ComputeTable1 takes a bare RevocationDb plus a CA-name resolver so
// the paper-scale bench can run it against a synthesized database; the
// (crawler, eco) signature delegates.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/crawler.h"
#include "core/ecosystem.h"
#include "core/pipeline.h"
#include "core/revocation_db.h"
#include "util/stats.h"

namespace rev::core {

// Maps a distribution-point / responder URL to the display name of the CA
// operating it ("" = unknown). Ecosystem::CaNameForUrl wrapped in a
// std::function, so analyses don't need a whole Ecosystem.
using CaNameResolver = std::function<std::string(const std::string&)>;

// §3.1/§3.2 dataset statistics.
struct DatasetStats {
  std::size_t unique_certs = 0;
  std::size_t leaf_set = 0;
  std::size_t intermediate_set = 0;
  std::size_t leaf_still_advertised = 0;
  std::size_t leaf_with_crl = 0;
  std::size_t leaf_with_ocsp = 0;
  std::size_t leaf_unrevocable = 0;
  std::size_t intermediate_with_crl = 0;
  std::size_t intermediate_with_ocsp = 0;
  std::size_t intermediate_unrevocable = 0;
};

DatasetStats ComputeDatasetStats(const Pipeline& pipeline);

// One crawled CRL with its measured size and certificate weight.
struct CrlSizeSample {
  std::string url;
  std::string ca_name;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  // Number of Leaf Set certificates whose (smallest) CRL this is — the
  // weight for Fig. 6's per-certificate distribution.
  double cert_weight = 0;
};

// Joins crawled CRLs with the Leaf Set's distribution-point references.
std::vector<CrlSizeSample> CollectCrlSizes(const RevocationCrawler& crawler,
                                           const Pipeline& pipeline,
                                           const Ecosystem& eco);

// Builds the Fig. 6 distributions: raw (each CRL weight 1) and weighted
// (each CRL weighted by its certificate count).
struct CrlSizeDistributions {
  util::Distribution raw;
  util::Distribution weighted;
};
CrlSizeDistributions BuildCrlSizeDistributions(
    const std::vector<CrlSizeSample>& samples);

// A Table 1 row.
struct CaStatsRow {
  std::string name;
  std::size_t num_crls = 0;
  std::size_t total_certs = 0;
  std::size_t revoked_certs = 0;
  double avg_crl_size_kb = 0;  // certificate-weighted average
};

std::vector<CaStatsRow> ComputeTable1(const std::vector<CrlSizeSample>& samples,
                                      const Pipeline& pipeline,
                                      const RevocationDb& db,
                                      const CaNameResolver& ca_name_for_url);

inline std::vector<CaStatsRow> ComputeTable1(
    const std::vector<CrlSizeSample>& samples, const Pipeline& pipeline,
    const RevocationCrawler& crawler, const Ecosystem& eco) {
  return ComputeTable1(
      samples, pipeline, crawler.db(),
      [&eco](const std::string& url) { return eco.CaNameForUrl(url); });
}

}  // namespace rev::core
