// The browser-side SSL client: performs the handshake, validates the chain,
// and executes the revocation-checking policy against the simulated network.
#pragma once

#include <string>

#include "browser/policy.h"
#include "crlset/crlset.h"
#include "crlset/onecrl.h"
#include "net/retry.h"
#include "net/simnet.h"
#include "tls/handshake.h"
#include "util/time.h"
#include "x509/verify.h"

namespace rev::browser {

struct VisitOutcome {
  enum class Decision : std::uint8_t { kAccepted, kRejected, kWarned };

  Decision decision = Decision::kAccepted;
  bool chain_valid = false;
  std::string reject_reason;  // human-readable, for reports

  // Instrumentation for the latency/bandwidth cost analyses. Fetch counts
  // are *logical* (one per URL consulted); extra attempts made by the
  // retry policy show up in `retries` and in the elapsed/bytes totals.
  int crl_fetches = 0;
  int ocsp_fetches = 0;
  int retries = 0;
  double revocation_seconds = 0;  // time spent fetching revocation info
  std::uint64_t revocation_bytes = 0;
  bool used_staple = false;
  // A CRLSet hit happened; with the BlockedSPKI bug the connection may
  // still have been accepted (the URL bar lies).
  bool crlset_hit = false;

  bool accepted() const { return decision == Decision::kAccepted; }
  bool rejected() const { return decision == Decision::kRejected; }
  bool warned() const { return decision == Decision::kWarned; }
};

const char* DecisionName(VisitOutcome::Decision d);

class Client {
 public:
  // `roots` is the trust store (the paper installs its test root in each
  // browser VM). The client keeps no cross-visit cache, matching the
  // fresh-VM-per-test methodology (§6.3).
  Client(Policy policy, net::SimNet* net, x509::CertPool roots);

  // Installs the pushed revocation list consulted when the policy sets
  // `use_crlset` (Chrome's out-of-band channel). Not owned; may be null.
  void SetCrlSet(const crlset::CrlSet* crlset) { crlset_ = crlset; }

  // Installs the OneCRL intermediate blocklist consulted when the policy
  // sets `use_onecrl`. Not owned; may be null.
  void SetOneCrl(const crlset::OneCrl* onecrl) { onecrl_ = onecrl; }

  // Connects to `server`, validates, and applies the revocation policy.
  VisitOutcome Visit(tls::TlsServer& server, util::Timestamp now);

  const Policy& policy() const { return policy_; }

  // Retry policy for the client's CRL/OCSP fetches. Defaults to None()
  // (single attempt) — the Table 2 matrix measures each browser's
  // *decision* behavior, which must not depend on our resilience layer —
  // but every fetch already routes through FetchWithRetry, so enabling
  // retries is one setter call (chaos_test exercises storms this way).
  const net::RetryPolicy& retry_policy() const { return retry_policy_; }
  void set_retry_policy(const net::RetryPolicy& policy) {
    retry_policy_ = policy;
  }

 private:
  Policy policy_;
  net::SimNet* net_;
  net::RetryPolicy retry_policy_ = net::RetryPolicy::None();
  x509::CertPool roots_;
  const crlset::CrlSet* crlset_ = nullptr;
  const crlset::OneCrl* onecrl_ = nullptr;
};

}  // namespace rev::browser
