#include "browser/policy.h"

namespace rev::browser {

const char* CheckLevelName(CheckLevel level) {
  switch (level) {
    case CheckLevel::kNever: return "never";
    case CheckLevel::kEvOnly: return "ev-only";
    case CheckLevel::kAlways: return "always";
  }
  return "?";
}

const char* FailureActionName(FailureAction action) {
  switch (action) {
    case FailureAction::kAccept: return "accept";
    case FailureAction::kReject: return "reject";
    case FailureAction::kWarn: return "warn";
  }
  return "?";
}

}  // namespace rev::browser
