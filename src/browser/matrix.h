// Rebuilds the paper's Table 2 ("Browser test results") by running the
// relevant test-suite cases against every browser profile and aggregating
// OS variants into the paper's column/cell notation:
//   "3"  — passes (rejects / performs the behavior) in all cases
//   "7"  — fails in all cases
//   "ev" — passes only for EV certificates
//   "a"  — pops a user alert (IE 10's leaf behavior)
//   "l/w"— passes only on Linux and Windows
//   "i"  — requests an OCSP staple but ignores the response
//   "–"  — not testable / not applicable
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace rev::browser {

struct Table2 {
  std::vector<std::string> columns;
  struct Row {
    std::string section;  // "CRL", "OCSP", "OCSP Stapling", ""
    std::string label;    // "Int. 1 Revoked", "Reject unknown status", ...
    std::vector<std::string> cells;
  };
  std::vector<Row> rows;
};

Table2 BuildTable2(std::uint64_t seed, util::Timestamp now);

// Fixed-width text rendering.
std::string RenderTable2(const Table2& table);

}  // namespace rev::browser
