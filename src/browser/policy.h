// The declarative revocation-checking policy model.
//
// Table 2 of the paper describes, for 30 browser/OS combinations, whether
// revocation is checked per chain position and protocol, what happens when
// revocation information is unavailable, how unknown OCSP statuses and
// staples are treated. A Policy captures exactly those degrees of freedom;
// profiles.h instantiates one per browser/OS combination.
#pragma once

#include <cstdint>
#include <string>

namespace rev::browser {

// Whether a check is performed at all.
enum class CheckLevel : std::uint8_t {
  kNever,   // revocation not checked for this position/protocol
  kEvOnly,  // checked only when the leaf asserts an EV policy
  kAlways,
};

// What the browser does when it attempted a check but could not obtain the
// revocation information (NXDOMAIN / 404 / timeout).
enum class FailureAction : std::uint8_t {
  kAccept,  // soft-fail: trust the certificate anyway
  kReject,  // hard-fail
  kWarn,    // pop a user warning (IE 10's leaf behavior, cell "a")
};

// Chain positions the paper distinguishes.
enum class Position : std::uint8_t {
  kLeaf,
  kFirstIntermediate,   // "Int. 1": issued the leaf
  kHigherIntermediate,  // "Int. 2+": everything between Int.1 and the root
};

// Per-position, per-protocol rules.
struct PositionPolicy {
  CheckLevel check = CheckLevel::kNever;
  FailureAction on_unavailable = FailureAction::kAccept;
  // Chrome 44 on Windows checks a non-EV first intermediate's CRL "only if
  // it only has a CRL listed" (§6.3); this skips the direct CRL check when
  // an OCSP responder is also present.
  bool skip_crl_if_ocsp_listed = false;
};

struct ProtocolPolicy {
  PositionPolicy leaf;
  PositionPolicy first_intermediate;
  PositionPolicy higher_intermediate;

  const PositionPolicy& For(Position p) const {
    switch (p) {
      case Position::kLeaf: return leaf;
      case Position::kFirstIntermediate: return first_intermediate;
      case Position::kHigherIntermediate: return higher_intermediate;
    }
    return leaf;
  }
};

struct Policy {
  std::string browser;  // "Chrome 44"
  std::string os;       // "OS X"

  ProtocolPolicy crl;
  ProtocolPolicy ocsp;

  // When the leaf has no intermediates above it, the "first position"
  // unavailability rule of some browsers (Opera 31, Safari, IE) applies to
  // the leaf itself.
  bool first_position_rule_covers_bare_leaf = false;

  // OCSP `unknown` handled correctly (reject) or treated as trusted.
  bool reject_unknown_ocsp = false;

  // Fall back to the CRL when the OCSP responder is unavailable.
  CheckLevel try_crl_on_ocsp_failure = CheckLevel::kNever;

  // Consult a pushed revocation list (Chrome's CRLSet, §7) before any
  // network checks. The set itself is supplied via Client::SetCrlSet.
  bool use_crlset = false;
  // Consult Mozilla's OneCRL intermediate blocklist (§7 footnote 24),
  // supplied via Client::SetOneCrl.
  bool use_onecrl = false;
  // Chrome 44 "declares [BlockedSPKI] certificates as revoked in the URL
  // status bar, but still completes the connection and renders the page"
  // (§7.1 note 26 — the authors filed a bug). True reproduces that bug;
  // false gives the obviously-intended reject.
  bool blocked_spki_bug = true;

  // OCSP Stapling.
  bool request_staple = false;
  // RFC 6961 multi-staple (status_request_v2); no shipped browser in the
  // paper supports it — kept for the extension ablation.
  bool request_multi_staple = false;
  // Android requests staples but ignores them during validation.
  bool use_staple_in_validation = true;
  // A staple with status `revoked` rejects the connection; browsers that
  // don't respect it fall through to contacting the responder directly.
  bool respect_revoked_staple = false;

  std::string DisplayName() const { return browser + " / " + os; }
};

const char* CheckLevelName(CheckLevel level);
const char* FailureActionName(FailureAction action);

}  // namespace rev::browser
