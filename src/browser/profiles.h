// The 30 browser/OS combinations the paper tested (§6.3, §6.4), encoded as
// revocation-checking policies derived from Table 2 and the accompanying
// prose. Profiles that share a Table 2 column carry the same `column` label
// so the matrix printer can aggregate OS variants (cells like "l/w").
#pragma once

#include <string>
#include <vector>

#include "browser/policy.h"

namespace rev::browser {

struct BrowserProfile {
  Policy policy;
  // Table 2 column this profile belongs to (e.g. "Chrome 44 OS X",
  // "IE 7-9"). Columns appear in paper order.
  std::string column;
  bool mobile = false;
  // Chrome on Linux could not be driven through the unavailability tests
  // (§6.3); its cells print "–" in those rows.
  bool unavailable_untestable = false;
};

// All 30 profiles, in Table 2 column order.
const std::vector<BrowserProfile>& AllProfiles();

// Distinct column labels in display order.
std::vector<std::string> Table2Columns();

// Finds a profile by browser and OS; returns nullptr if absent.
const BrowserProfile* FindProfile(const std::string& browser,
                                  const std::string& os);

}  // namespace rev::browser
