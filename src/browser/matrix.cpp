#include "browser/matrix.h"

#include <map>
#include <sstream>

#include "browser/profiles.h"
#include "browser/testsuite.h"

namespace rev::browser {

namespace {

// A canonical scenario used to evaluate one behavior row against one profile.
struct Probe {
  TestCase non_ev;
  TestCase ev;
};

Probe MakeRevokedProbe(RevProtocol protocol, int num_intermediates,
                       int element) {
  TestCase base;
  base.id = 9000;  // probe ids don't collide with the suite; only used for seeds
  base.num_intermediates = num_intermediates;
  base.protocol = protocol;
  base.revoked_element = element;
  Probe probe{base, base};
  probe.ev.ev = true;
  return probe;
}

Probe MakeUnavailableProbe(RevProtocol protocol, int num_intermediates,
                           int element) {
  TestCase base;
  base.id = 9100;
  base.num_intermediates = num_intermediates;
  base.protocol = protocol;
  base.failure = FailureMode::kTimeout;
  base.failure_element = element;
  Probe probe{base, base};
  probe.ev.ev = true;
  return probe;
}

// Per-profile cell for a pass/fail behavior: "3" (both), "ev" (EV only),
// "a" (warned), "7" (neither).
std::string EvaluateCell(const Probe& probe, const Policy& policy,
                         std::uint64_t seed, util::Timestamp now) {
  const VisitOutcome non_ev = RunCase(probe.non_ev, policy, seed, now);
  const VisitOutcome ev = RunCase(probe.ev, policy, seed + 1, now);
  if (non_ev.warned() || ev.warned()) return "a";
  if (non_ev.rejected() && ev.rejected()) return "3";
  if (ev.rejected()) return "ev";
  return "7";
}

// Aggregates OS-variant cells within a Table 2 column. Identical cells pass
// through; the accept-on-OSX / reject-elsewhere split prints "l/w".
std::string Aggregate(const std::vector<std::pair<std::string, std::string>>&
                          os_cells /* (os, cell) */) {
  bool all_same = true;
  for (const auto& [os, cell] : os_cells)
    if (cell != os_cells.front().second) all_same = false;
  if (all_same) return os_cells.front().second;

  bool osx_accepts = true, others_reject = true;
  for (const auto& [os, cell] : os_cells) {
    if (os == "OS X") {
      if (cell != "7") osx_accepts = false;
    } else {
      if (cell != "3") others_reject = false;
    }
  }
  if (osx_accepts && others_reject) return "l/w";

  std::string joined;
  for (const auto& [os, cell] : os_cells) {
    if (!joined.empty()) joined += "/";
    joined += cell;
  }
  return joined;
}

}  // namespace

Table2 BuildTable2(std::uint64_t seed, util::Timestamp now) {
  Table2 table;
  table.columns = Table2Columns();

  // Group profiles by column, preserving order.
  std::map<std::string, std::vector<const BrowserProfile*>> by_column;
  for (const BrowserProfile& profile : AllProfiles())
    by_column[profile.column].push_back(&profile);

  struct RowSpec {
    std::string section;
    std::string label;
    // Produces the per-profile cell.
    std::function<std::string(const BrowserProfile&)> eval;
  };

  std::uint64_t probe_seed = seed;
  auto behavior_cell = [&](const Probe& probe, const BrowserProfile& profile,
                           bool needs_unavailable_support) -> std::string {
    if (needs_unavailable_support && profile.unavailable_untestable) return "-";
    return EvaluateCell(probe, profile.policy, probe_seed, now);
  };

  std::vector<RowSpec> specs;
  for (RevProtocol protocol : {RevProtocol::kCrlOnly, RevProtocol::kOcspOnly}) {
    const std::string section =
        protocol == RevProtocol::kCrlOnly ? "CRL" : "OCSP";
    struct PositionSpec {
      const char* label;
      int ints;
      int element;
    };
    for (const PositionSpec& pos : {PositionSpec{"Int. 1", 2, 1},
                                    PositionSpec{"Int. 2+", 2, 2},
                                    PositionSpec{"Leaf", 1, 0}}) {
      specs.push_back(RowSpec{
          section, std::string(pos.label) + " Revoked",
          [&, protocol, pos](const BrowserProfile& profile) {
            return behavior_cell(
                MakeRevokedProbe(protocol, pos.ints, pos.element), profile,
                false);
          }});
      specs.push_back(RowSpec{
          section, std::string(pos.label) + " Unavailable",
          [&, protocol, pos](const BrowserProfile& profile) {
            return behavior_cell(
                MakeUnavailableProbe(protocol, pos.ints, pos.element), profile,
                true);
          }});
    }
  }

  specs.push_back(RowSpec{
      "", "Reject unknown status", [&](const BrowserProfile& profile) {
        if (profile.mobile || profile.unavailable_untestable) return std::string("-");
        TestCase test;
        test.id = 9200;
        test.num_intermediates = 1;
        test.protocol = RevProtocol::kOcspOnly;
        test.failure = FailureMode::kOcspUnknown;
        test.failure_element = 0;
        Probe probe{test, test};
        probe.ev.ev = true;
        const std::string cell =
            EvaluateCell(probe, profile.policy, probe_seed, now);
        // The table reports this row as pass/fail ("3"/"7"), folding the
        // EV-only case into pass.
        return cell == "ev" ? std::string("3") : cell;
      }});

  specs.push_back(RowSpec{
      "", "Try CRL on failure", [&](const BrowserProfile& profile) {
        if (profile.mobile || profile.unavailable_untestable) return std::string("-");
        TestCase test;
        test.id = 9300;
        test.num_intermediates = 1;
        test.protocol = RevProtocol::kBoth;
        test.revoked_element = 0;
        test.failure = FailureMode::kOcspTimeout;
        test.failure_element = 0;
        Probe probe{test, test};
        probe.ev.ev = true;
        return EvaluateCell(probe, profile.policy, probe_seed, now);
      }});

  specs.push_back(RowSpec{
      "OCSP Stapling", "Request OCSP staple",
      [&](const BrowserProfile& profile) -> std::string {
        if (!profile.policy.request_staple) return "7";
        if (!profile.policy.use_staple_in_validation) return "i";
        return "3";
      }});

  specs.push_back(RowSpec{
      "OCSP Stapling", "Respect revoked staple",
      [&](const BrowserProfile& profile) -> std::string {
        if (!profile.policy.request_staple ||
            !profile.policy.use_staple_in_validation ||
            profile.unavailable_untestable)
          return "-";
        TestCase test;
        test.id = 9400;
        test.num_intermediates = 1;
        test.protocol = RevProtocol::kOcspOnly;
        test.stapling = true;
        test.staple_status = ocsp::CertStatus::kRevoked;
        Probe probe{test, test};
        probe.ev.ev = true;
        const std::string cell =
            EvaluateCell(probe, profile.policy, probe_seed, now);
        return cell == "ev" ? std::string("3") : cell;
      }});

  for (const RowSpec& spec : specs) {
    Table2::Row row;
    row.section = spec.section;
    row.label = spec.label;
    for (const std::string& column : table.columns) {
      std::vector<std::pair<std::string, std::string>> os_cells;
      for (const BrowserProfile* profile : by_column[column])
        os_cells.emplace_back(profile->policy.os, spec.eval(*profile));
      row.cells.push_back(Aggregate(os_cells));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

std::string RenderTable2(const Table2& table) {
  std::ostringstream out;
  const int label_width = 32;
  const int cell_width = 14;

  out << std::string(label_width, ' ');
  for (const std::string& column : table.columns) {
    std::string c = column.substr(0, cell_width - 1);
    out << c << std::string(static_cast<std::size_t>(cell_width) - c.size(), ' ');
  }
  out << "\n";

  std::string last_section;
  for (const Table2::Row& row : table.rows) {
    if (row.section != last_section && !row.section.empty()) {
      out << "-- " << row.section << " --\n";
      last_section = row.section;
    }
    std::string label = "  " + row.label;
    label = label.substr(0, label_width - 1);
    out << label << std::string(static_cast<std::size_t>(label_width) - label.size(), ' ');
    for (const std::string& cell : row.cells) {
      std::string c = cell.substr(0, cell_width - 1);
      out << c << std::string(static_cast<std::size_t>(cell_width) - c.size(), ' ');
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace rev::browser
