#include "browser/profiles.h"

namespace rev::browser {

namespace {

using CL = CheckLevel;
using FA = FailureAction;

PositionPolicy Pos(CL check, FA on_unavailable = FA::kAccept) {
  PositionPolicy p;
  p.check = check;
  p.on_unavailable = on_unavailable;
  return p;
}

// Chrome 44. EV-gated checking everywhere except the Windows non-EV
// first-intermediate CRL quirk; unavailability rejects only at the first
// intermediate (EV-gated on OS X/Linux, unconditional on Windows).
Policy Chrome(const std::string& os) {
  Policy p;
  p.browser = "Chrome 44";
  p.os = os;
  p.crl.leaf = Pos(CL::kEvOnly, FA::kAccept);
  p.crl.first_intermediate = Pos(CL::kEvOnly, FA::kReject);
  p.crl.higher_intermediate = Pos(CL::kEvOnly, FA::kAccept);
  p.ocsp.leaf = Pos(CL::kEvOnly, FA::kAccept);
  p.ocsp.first_intermediate = Pos(CL::kEvOnly, FA::kAccept);
  p.ocsp.higher_intermediate = Pos(CL::kEvOnly, FA::kAccept);
  p.reject_unknown_ocsp = false;
  p.try_crl_on_ocsp_failure = CL::kEvOnly;
  // Chrome additionally consults the pushed CRLSet on every platform (§7).
  p.use_crlset = true;
  p.request_staple = true;
  p.respect_revoked_staple = false;  // OS X default; Windows overrides
  if (os == "Windows") {
    // Non-EV: only the first intermediate is checked, and only via a CRL
    // when no OCSP responder is listed.
    p.crl.first_intermediate.check = CL::kAlways;
    p.crl.first_intermediate.skip_crl_if_ocsp_listed = true;
    p.respect_revoked_staple = true;
  }
  return p;
}

Policy Firefox(const std::string& os) {
  Policy p;
  p.browser = "Firefox 40";
  p.os = os;
  // Firefox does not check any CRLs.
  p.ocsp.leaf = Pos(CL::kAlways, FA::kAccept);
  p.ocsp.first_intermediate = Pos(CL::kEvOnly, FA::kAccept);
  p.ocsp.higher_intermediate = Pos(CL::kEvOnly, FA::kAccept);
  p.reject_unknown_ocsp = true;
  p.try_crl_on_ocsp_failure = CL::kNever;
  // Firefox's OneCRL intermediate blocklist (§7 footnote 24).
  p.use_onecrl = true;
  p.request_staple = true;
  p.respect_revoked_staple = true;
  return p;
}

Policy Opera12(const std::string& os) {
  Policy p;
  p.browser = "Opera 12.17";
  p.os = os;
  p.crl.leaf = Pos(CL::kAlways, FA::kAccept);
  p.crl.first_intermediate = Pos(CL::kAlways, FA::kAccept);
  p.crl.higher_intermediate = Pos(CL::kAlways, FA::kAccept);
  p.ocsp.leaf = Pos(CL::kAlways, FA::kAccept);
  p.reject_unknown_ocsp = true;
  p.request_staple = true;
  p.respect_revoked_staple = true;
  return p;
}

Policy Opera31(const std::string& os) {
  Policy p;
  p.browser = "Opera 31.0";
  p.os = os;
  const bool linux_or_windows = os != "OS X";
  p.crl.leaf = Pos(CL::kAlways, FA::kAccept);
  p.crl.first_intermediate = Pos(CL::kAlways, FA::kReject);
  p.crl.higher_intermediate = Pos(CL::kAlways, FA::kAccept);
  p.ocsp.leaf = Pos(CL::kAlways, FA::kAccept);
  p.ocsp.first_intermediate =
      Pos(CL::kAlways, linux_or_windows ? FA::kReject : FA::kAccept);
  p.ocsp.higher_intermediate = Pos(CL::kAlways, FA::kAccept);
  p.first_position_rule_covers_bare_leaf = true;
  p.reject_unknown_ocsp = false;  // incorrectly trusts unknown
  p.try_crl_on_ocsp_failure = linux_or_windows ? CL::kAlways : CL::kNever;
  p.request_staple = true;
  p.respect_revoked_staple = linux_or_windows;
  return p;
}

Policy Safari(const std::string& version) {
  Policy p;
  p.browser = "Safari " + version;
  p.os = "OS X";
  p.crl.leaf = Pos(CL::kAlways, FA::kAccept);
  p.crl.first_intermediate = Pos(CL::kAlways, FA::kReject);
  p.crl.higher_intermediate = Pos(CL::kAlways, FA::kAccept);
  p.ocsp.leaf = Pos(CL::kAlways, FA::kAccept);
  p.ocsp.first_intermediate = Pos(CL::kAlways, FA::kAccept);
  p.ocsp.higher_intermediate = Pos(CL::kAlways, FA::kAccept);
  p.first_position_rule_covers_bare_leaf = true;
  p.reject_unknown_ocsp = false;
  p.try_crl_on_ocsp_failure = CL::kAlways;
  p.request_staple = false;
  return p;
}

Policy InternetExplorer(const std::string& version, const std::string& os,
                        FA leaf_unavailable) {
  Policy p;
  p.browser = "IE " + version;
  p.os = os;
  p.crl.leaf = Pos(CL::kAlways, leaf_unavailable);
  p.crl.first_intermediate = Pos(CL::kAlways, FA::kReject);
  p.crl.higher_intermediate = Pos(CL::kAlways, FA::kAccept);
  p.ocsp.leaf = Pos(CL::kAlways, leaf_unavailable);
  p.ocsp.first_intermediate = Pos(CL::kAlways, FA::kReject);
  p.ocsp.higher_intermediate = Pos(CL::kAlways, FA::kAccept);
  p.first_position_rule_covers_bare_leaf = true;
  p.reject_unknown_ocsp = false;
  p.try_crl_on_ocsp_failure = CL::kAlways;
  p.request_staple = true;
  p.respect_revoked_staple = true;
  return p;
}

// Mobile browsers: no revocation checking whatsoever (§6.4).
Policy Mobile(const std::string& browser, const std::string& os,
              bool requests_staple_but_ignores) {
  Policy p;
  p.browser = browser;
  p.os = os;
  p.request_staple = requests_staple_but_ignores;
  p.use_staple_in_validation = !requests_staple_but_ignores;
  return p;
}

std::vector<BrowserProfile> BuildProfiles() {
  std::vector<BrowserProfile> profiles;
  auto add = [&](Policy policy, std::string column, bool mobile = false,
                 bool untestable = false) {
    profiles.push_back(BrowserProfile{std::move(policy), std::move(column),
                                      mobile, untestable});
  };

  add(Chrome("OS X"), "Chrome 44 OS X");
  add(Chrome("Windows"), "Chrome 44 Win.");
  add(Chrome("Linux"), "Chrome 44 Lin.", false, /*untestable=*/true);

  add(Firefox("OS X"), "Firefox 40");
  add(Firefox("Windows"), "Firefox 40");
  add(Firefox("Linux"), "Firefox 40");

  add(Opera12("OS X"), "Opera 12.17");
  add(Opera12("Windows"), "Opera 12.17");
  add(Opera12("Linux"), "Opera 12.17");

  add(Opera31("OS X"), "Opera 31.0");
  add(Opera31("Windows"), "Opera 31.0");
  add(Opera31("Linux"), "Opera 31.0");

  add(Safari("6"), "Safari 6-8");
  add(Safari("7"), "Safari 6-8");
  add(Safari("8"), "Safari 6-8");

  add(InternetExplorer("7", "Vista", FA::kAccept), "IE 7-9");
  add(InternetExplorer("8", "Windows 7", FA::kAccept), "IE 7-9");
  add(InternetExplorer("9", "Windows 7", FA::kAccept), "IE 7-9");
  add(InternetExplorer("10", "Windows 8", FA::kWarn), "IE 10");
  add(InternetExplorer("11", "Windows 7", FA::kReject), "IE 11");
  add(InternetExplorer("11", "Windows 8.1", FA::kReject), "IE 11");
  add(InternetExplorer("11", "Windows 10", FA::kReject), "IE 11");

  add(Mobile("Mobile Safari", "iOS 6", false), "iOS 6-8", true);
  add(Mobile("Mobile Safari", "iOS 7", false), "iOS 6-8", true);
  add(Mobile("Mobile Safari", "iOS 8", false), "iOS 6-8", true);
  add(Mobile("Stock Browser", "Android 4.3", true), "Andr. Stock", true);
  add(Mobile("Stock Browser", "Android 4.4", true), "Andr. Stock", true);
  add(Mobile("Stock Browser", "Android 5.1", true), "Andr. Stock", true);
  add(Mobile("Chrome", "Android 5.1", true), "Andr. Chrome", true);
  add(Mobile("IE Mobile", "Windows Phone 8.0", false), "IE Mob. 8.0", true);

  return profiles;
}

}  // namespace

const std::vector<BrowserProfile>& AllProfiles() {
  static const std::vector<BrowserProfile> profiles = BuildProfiles();
  return profiles;
}

std::vector<std::string> Table2Columns() {
  std::vector<std::string> columns;
  for (const BrowserProfile& profile : AllProfiles()) {
    if (columns.empty() || columns.back() != profile.column)
      columns.push_back(profile.column);
  }
  return columns;
}

const BrowserProfile* FindProfile(const std::string& browser,
                                  const std::string& os) {
  for (const BrowserProfile& profile : AllProfiles()) {
    if (profile.policy.browser == browser && profile.policy.os == os)
      return &profile;
  }
  return nullptr;
}

}  // namespace rev::browser
