// The browser revocation test suite (§6.1–6.2).
//
// GenerateTestSuite() produces 244 test cases spanning the paper's four
// dimensions — chain length, revocation protocol, Extended Validation, and
// unavailable revocation information — plus the OCSP Stapling scenarios.
// Each case gets a fresh, dedicated PKI (root, intermediates, leaf, CRL and
// OCSP endpoints, TLS server) on its own simulated hosts, mirroring the
// paper's one-Nginx-instance-per-test deployment and eliminating caching
// effects between tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "browser/client.h"
#include "browser/policy.h"
#include "ca/ca.h"
#include "net/simnet.h"
#include "ocsp/ocsp.h"
#include "scan/internet.h"
#include "tls/handshake.h"

namespace rev::browser {

enum class RevProtocol : std::uint8_t { kCrlOnly, kOcspOnly, kBoth };
const char* RevProtocolName(RevProtocol p);

// The §6.1 unavailability failure modes.
enum class FailureMode : std::uint8_t {
  kNone,
  kNxdomain,     // revocation server's domain does not exist
  kHttp404,      // server returns HTTP 404
  kTimeout,      // server does not respond
  kOcspUnknown,  // OCSP responder answers `unknown`
  // Only the OCSP responder is down; any CRL endpoint stays reachable.
  // Used by the "Try CRL on failure" probe (not part of the 244-case grid).
  kOcspTimeout,
};
const char* FailureModeName(FailureMode m);

struct TestCase {
  int id = 0;
  // Chain shape: 0–3 intermediates between root and leaf.
  int num_intermediates = 1;
  // Element revoked: -1 none; 0 = leaf; 1 = intermediate that issued the
  // leaf ("Int. 1"); up to num_intermediates.
  int revoked_element = -1;
  RevProtocol protocol = RevProtocol::kBoth;
  bool ev = false;
  FailureMode failure = FailureMode::kNone;
  int failure_element = -1;  // element whose revocation info fails

  // OCSP Stapling scenarios: the responder is firewalled so the staple is
  // the only channel (§6.1 note 15), and the server is patched to staple
  // any status unless `server_refuses_bad_staple` (note 16).
  bool stapling = false;
  bool multi_staple = false;
  ocsp::CertStatus staple_status = ocsp::CertStatus::kGood;
  bool server_refuses_bad_staple = false;
  // The 244-case grid always firewalls the responder in stapling tests;
  // cost-measurement ablations keep it reachable instead.
  bool staple_responder_reachable = false;

  std::string Description() const;
};

// The full 244-case grid. See EXPERIMENTS.md for the breakdown
// (84 revocation-status cases + 140 unavailability cases + 20 stapling).
std::vector<TestCase> GenerateTestSuite();

// A fully provisioned environment for one test case.
class TestEnvironment {
 public:
  TestEnvironment(const TestCase& test, std::uint64_t seed,
                  util::Timestamp now);

  // Runs one browser policy against this environment with a fresh client.
  // (The TLS server's staple cache is reset per visit.)
  VisitOutcome Run(const Policy& policy);

  const TestCase& test() const { return test_; }
  net::SimNet& net() { return net_; }
  const x509::CertPtr& leaf() const { return leaf_; }

 private:
  TestCase test_;
  util::Timestamp now_;
  net::SimNet net_;
  // cas_[0] is the root; cas_[k] issued cas_[k-1]'s... — ordered root first,
  // then intermediates outward; the leaf is issued by cas_.back().
  std::vector<std::unique_ptr<ca::CertificateAuthority>> cas_;
  x509::CertPtr leaf_;
  x509::CertPool roots_;
  tls::TlsServer::Config server_config_;
};

// Convenience: provision + run in one call.
VisitOutcome RunCase(const TestCase& test, const Policy& policy,
                     std::uint64_t seed, util::Timestamp now);

}  // namespace rev::browser
