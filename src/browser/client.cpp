#include "browser/client.h"

#include "crl/crl.h"
#include "ocsp/ocsp.h"

namespace rev::browser {

const char* DecisionName(VisitOutcome::Decision d) {
  switch (d) {
    case VisitOutcome::Decision::kAccepted: return "accepted";
    case VisitOutcome::Decision::kRejected: return "rejected";
    case VisitOutcome::Decision::kWarned: return "warned";
  }
  return "?";
}

Client::Client(Policy policy, net::SimNet* net, x509::CertPool roots)
    : policy_(std::move(policy)), net_(net), roots_(std::move(roots)) {}

namespace {

// Result of checking one chain element via one protocol.
enum class ElementStatus {
  kGood,
  kRevoked,
  kUnknown,      // OCSP responder answered `unknown`
  kUnavailable,  // could not obtain the information
};

bool Attempted(CheckLevel level, bool ev) {
  return level == CheckLevel::kAlways ||
         (level == CheckLevel::kEvOnly && ev);
}

struct CheckContext {
  net::SimNet* net = nullptr;
  util::Timestamp now = 0;
  VisitOutcome* outcome = nullptr;
  const net::RetryPolicy* retry = nullptr;
};

void Account(CheckContext& ctx, const net::RetryResult& fetch) {
  // The whole retry sequence — attempt costs plus backoff waits — is what
  // the user actually waited for.
  ctx.outcome->revocation_seconds += fetch.total_elapsed_seconds;
  ctx.outcome->revocation_bytes += fetch.total_bytes;
  ctx.outcome->retries += fetch.attempts - 1;
}

// Downloads and consults the CRL(s) listed in `cert`.
ElementStatus CheckViaCrl(CheckContext& ctx, const x509::Certificate& cert,
                          const crypto::PublicKey& issuer_key) {
  bool any_fetched = false;
  for (const std::string& url : cert.tbs.crl_urls) {
    ++ctx.outcome->crl_fetches;
    const net::RetryResult fetch = net::GetWithRetry(
        *ctx.net, url, ctx.now, *ctx.retry, /*timeout_seconds=*/10.0,
        [](const net::HttpResponse& response) {
          return crl::ParseCrl(response.body).has_value();
        });
    Account(ctx, fetch);
    if (!fetch.ok()) continue;
    auto crl = crl::ParseCrl(fetch.fetch.response.body);
    if (!crl || !crl::VerifyCrlSignature(*crl, issuer_key)) continue;
    any_fetched = true;
    const crl::CrlIndex index(*crl);
    if (index.IsRevoked(cert.tbs.serial)) return ElementStatus::kRevoked;
  }
  return any_fetched ? ElementStatus::kGood : ElementStatus::kUnavailable;
}

// Queries the OCSP responder(s) listed in `cert`.
ElementStatus CheckViaOcsp(CheckContext& ctx, const x509::Certificate& cert,
                           const x509::Certificate& issuer,
                           const crypto::PublicKey& issuer_key) {
  for (const std::string& url : cert.tbs.ocsp_urls) {
    ++ctx.outcome->ocsp_fetches;
    ocsp::OcspRequest request;
    request.cert_ids = {ocsp::MakeCertId(issuer, cert.tbs.serial)};
    // Browsers favor the GET form (§6.2) — cacheable by intermediaries.
    std::string get_url = url;
    if (!get_url.empty() && get_url.back() == '/') get_url.pop_back();
    get_url += ocsp::OcspGetPath(request);
    const net::RetryResult fetch = net::GetWithRetry(
        *ctx.net, get_url, ctx.now, *ctx.retry, /*timeout_seconds=*/10.0,
        [](const net::HttpResponse& response) {
          return ocsp::ParseOcspResponse(response.body).has_value();
        });
    Account(ctx, fetch);
    if (!fetch.ok()) continue;
    auto response = ocsp::ParseOcspResponse(fetch.fetch.response.body);
    if (!response || response->status != ocsp::ResponseStatus::kSuccessful)
      continue;
    if (!ocsp::VerifyOcspSignature(*response, issuer_key)) continue;
    switch (response->single.status) {
      case ocsp::CertStatus::kGood: return ElementStatus::kGood;
      case ocsp::CertStatus::kRevoked: return ElementStatus::kRevoked;
      case ocsp::CertStatus::kUnknown: return ElementStatus::kUnknown;
    }
  }
  return ElementStatus::kUnavailable;
}

}  // namespace

VisitOutcome Client::Visit(tls::TlsServer& server, util::Timestamp now) {
  VisitOutcome outcome;

  tls::ClientHello hello;
  hello.status_request = policy_.request_staple;
  hello.status_request_v2 = policy_.request_multi_staple;

  const tls::ServerHello server_hello = server.Handshake(hello, now);
  if (server_hello.chain_der.empty()) {
    outcome.decision = VisitOutcome::Decision::kRejected;
    outcome.reject_reason = "no certificate";
    return outcome;
  }

  // Parse the advertised chain.
  std::vector<x509::CertPtr> presented;
  for (const Bytes& der : server_hello.chain_der) {
    auto cert = x509::ParseCertificate(der);
    if (!cert) {
      outcome.decision = VisitOutcome::Decision::kRejected;
      outcome.reject_reason = "unparseable certificate";
      return outcome;
    }
    presented.push_back(
        std::make_shared<const x509::Certificate>(*std::move(cert)));
  }

  // Path validation against the trust store.
  x509::CertPool intermediates;
  for (std::size_t i = 1; i < presented.size(); ++i)
    intermediates.Add(presented[i]);
  x509::VerifyOptions verify_options;
  verify_options.at = now;
  const x509::VerifyResult path =
      x509::VerifyChain(presented[0], intermediates, roots_, verify_options);
  if (!path.ok()) {
    outcome.decision = VisitOutcome::Decision::kRejected;
    outcome.reject_reason =
        std::string("chain: ") + x509::VerifyStatusName(path.status);
    return outcome;
  }
  outcome.chain_valid = true;

  // CRLSet consultation happens before any network checks: it is free
  // (pushed out-of-band) and applies to every certificate regardless of EV.
  if (policy_.use_crlset && crlset_ != nullptr) {
    for (std::size_t i = 0; i + 1 < path.chain.size(); ++i) {
      const x509::Certificate& cert = *path.chain[i];
      const Bytes parent = path.chain[i + 1]->SubjectSpkiSha256();
      if (crlset_->IsRevoked(parent, cert.tbs.serial)) {
        outcome.crlset_hit = true;
        outcome.decision = VisitOutcome::Decision::kRejected;
        outcome.reject_reason =
            "CRLSet: revoked (position " + std::to_string(i) + ")";
        return outcome;
      }
      if (crlset_->IsBlockedSpki(cert.SubjectSpkiSha256())) {
        outcome.crlset_hit = true;
        if (!policy_.blocked_spki_bug) {
          outcome.decision = VisitOutcome::Decision::kRejected;
          outcome.reject_reason = "CRLSet: blocked SPKI";
          return outcome;
        }
        // Chrome 44's bug: the URL bar says revoked, the page loads anyway.
      }
    }
  }

  // OneCRL: intermediates only (§7 footnote 24).
  if (policy_.use_onecrl && onecrl_ != nullptr) {
    for (std::size_t i = 1; i + 1 < path.chain.size(); ++i) {
      if (onecrl_->Blocks(*path.chain[i])) {
        outcome.decision = VisitOutcome::Decision::kRejected;
        outcome.reject_reason =
            "OneCRL: blocked intermediate (position " + std::to_string(i) + ")";
        return outcome;
      }
    }
  }

  const bool ev = path.chain.front()->IsEv();
  // Chain elements needing revocation checks: everything except the root.
  const std::size_t elements = path.chain.size() - 1;
  const std::size_t num_intermediates = elements > 0 ? elements - 1 : 0;

  // Staple processing. RFC 6066 staples cover the leaf only; RFC 6961
  // multi-staples cover every chain position.
  std::vector<bool> satisfied_by_staple(elements, false);

  // Applies one staple covering chain position `pos`. Returns false when the
  // staple forces an immediate rejection.
  auto apply_staple = [&](BytesView staple_der, std::size_t pos) -> bool {
    auto staple = ocsp::ParseOcspResponse(staple_der);
    if (pos + 1 >= path.chain.size()) return true;
    const crypto::PublicKey& issuer_key = path.chain[pos + 1]->tbs.public_key;
    if (!staple || staple->status != ocsp::ResponseStatus::kSuccessful ||
        !ocsp::VerifyOcspSignature(*staple, issuer_key))
      return true;  // unusable staple: ignore
    outcome.used_staple = true;
    switch (staple->single.status) {
      case ocsp::CertStatus::kRevoked:
        if (policy_.respect_revoked_staple) {
          outcome.decision = VisitOutcome::Decision::kRejected;
          outcome.reject_reason = "stapled OCSP: revoked";
          return false;
        }
        // Browsers that don't respect revoked staples fall through to
        // contacting the responder directly (Chrome on OS X, §6.3).
        break;
      case ocsp::CertStatus::kGood:
        satisfied_by_staple[pos] = true;
        break;
      case ocsp::CertStatus::kUnknown:
        if (policy_.reject_unknown_ocsp) {
          outcome.decision = VisitOutcome::Decision::kRejected;
          outcome.reject_reason = "stapled OCSP: unknown";
          return false;
        }
        // Incorrectly treated as trusted.
        satisfied_by_staple[pos] = true;
        break;
    }
    return true;
  };

  if (policy_.use_staple_in_validation) {
    if (policy_.request_multi_staple &&
        !server_hello.stapled_ocsp_multi.empty()) {
      for (std::size_t pos = 0;
           pos < server_hello.stapled_ocsp_multi.size() && pos < elements;
           ++pos) {
        const Bytes& staple = server_hello.stapled_ocsp_multi[pos];
        if (!staple.empty() && !apply_staple(staple, pos)) return outcome;
      }
    } else if (policy_.request_staple && !server_hello.stapled_ocsp.empty()) {
      if (!apply_staple(server_hello.stapled_ocsp, 0)) return outcome;
    }
  }

  CheckContext ctx{net_, now, &outcome, &retry_policy_};
  bool warn = false;

  for (std::size_t i = 0; i < elements; ++i) {
    const x509::Certificate& cert = *path.chain[i];
    const x509::Certificate& issuer = *path.chain[i + 1];
    const crypto::PublicKey& issuer_key = issuer.tbs.public_key;

    Position position;
    if (i == 0) {
      position = Position::kLeaf;
    } else if (i == 1) {
      position = Position::kFirstIntermediate;
    } else {
      position = Position::kHigherIntermediate;
    }

    // Some browsers apply their strict "first element" unavailability rule
    // to the leaf when the chain has no intermediates (§6.3: Opera 31,
    // Safari, IE reject when "the first certificate in the chain" fails).
    const bool treat_as_first = position == Position::kLeaf &&
                                num_intermediates == 0 &&
                                policy_.first_position_rule_covers_bare_leaf;

    const PositionPolicy& ocsp_rule =
        treat_as_first ? policy_.ocsp.first_intermediate
                       : policy_.ocsp.For(position);
    const PositionPolicy& crl_rule = treat_as_first
                                         ? policy_.crl.first_intermediate
                                         : policy_.crl.For(position);

    const bool has_ocsp = !cert.tbs.ocsp_urls.empty();
    const bool has_crl = !cert.tbs.crl_urls.empty();

    if (satisfied_by_staple[i]) continue;

    FailureAction failure_action = FailureAction::kAccept;
    ElementStatus status = ElementStatus::kGood;
    bool checked = false;

    if (has_ocsp && Attempted(ocsp_rule.check, ev)) {
      checked = true;
      status = CheckViaOcsp(ctx, cert, issuer, issuer_key);
      failure_action = ocsp_rule.on_unavailable;
      if (status == ElementStatus::kUnavailable &&
          Attempted(policy_.try_crl_on_ocsp_failure, ev) && has_crl) {
        status = CheckViaCrl(ctx, cert, issuer_key);
        failure_action = crl_rule.on_unavailable;
      }
    } else if (has_crl && Attempted(crl_rule.check, ev) &&
               !(crl_rule.skip_crl_if_ocsp_listed && has_ocsp)) {
      checked = true;
      status = CheckViaCrl(ctx, cert, issuer_key);
      failure_action = crl_rule.on_unavailable;
    }

    if (!checked) continue;

    switch (status) {
      case ElementStatus::kGood:
        break;
      case ElementStatus::kRevoked:
        outcome.decision = VisitOutcome::Decision::kRejected;
        outcome.reject_reason = "revoked (position " + std::to_string(i) + ")";
        return outcome;
      case ElementStatus::kUnknown:
        if (policy_.reject_unknown_ocsp) {
          outcome.decision = VisitOutcome::Decision::kRejected;
          outcome.reject_reason = "OCSP status unknown";
          return outcome;
        }
        break;
      case ElementStatus::kUnavailable:
        switch (failure_action) {
          case FailureAction::kAccept:
            break;
          case FailureAction::kReject:
            outcome.decision = VisitOutcome::Decision::kRejected;
            outcome.reject_reason =
                "revocation info unavailable (position " + std::to_string(i) +
                ")";
            return outcome;
          case FailureAction::kWarn:
            warn = true;
            break;
        }
        break;
    }
  }

  outcome.decision = warn ? VisitOutcome::Decision::kWarned
                          : VisitOutcome::Decision::kAccepted;
  return outcome;
}

}  // namespace rev::browser
