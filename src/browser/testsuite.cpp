#include "browser/testsuite.h"

#include <cassert>

#include "util/rng.h"

namespace rev::browser {

const char* RevProtocolName(RevProtocol p) {
  switch (p) {
    case RevProtocol::kCrlOnly: return "crl";
    case RevProtocol::kOcspOnly: return "ocsp";
    case RevProtocol::kBoth: return "both";
  }
  return "?";
}

const char* FailureModeName(FailureMode m) {
  switch (m) {
    case FailureMode::kNone: return "none";
    case FailureMode::kNxdomain: return "nxdomain";
    case FailureMode::kHttp404: return "http-404";
    case FailureMode::kTimeout: return "timeout";
    case FailureMode::kOcspUnknown: return "ocsp-unknown";
    case FailureMode::kOcspTimeout: return "ocsp-timeout";
  }
  return "?";
}

std::string TestCase::Description() const {
  std::string d = "case#" + std::to_string(id) + " ints=" +
                  std::to_string(num_intermediates) + " proto=" +
                  RevProtocolName(protocol);
  if (ev) d += " ev";
  if (revoked_element >= 0)
    d += " revoked=" + std::to_string(revoked_element);
  if (failure != FailureMode::kNone)
    d += std::string(" fail=") + FailureModeName(failure) + "@" +
         std::to_string(failure_element);
  if (stapling) {
    d += std::string(" staple=") + ocsp::CertStatusName(staple_status);
    if (multi_staple) d += " multi";
    if (server_refuses_bad_staple) d += " nginx-default";
  }
  return d;
}

std::vector<TestCase> GenerateTestSuite() {
  std::vector<TestCase> suite;
  int next_id = 0;

  // A. Revocation-status cases: 84.
  for (int k = 0; k <= 3; ++k) {
    for (int revoked = -1; revoked <= k; ++revoked) {
      for (RevProtocol protocol :
           {RevProtocol::kCrlOnly, RevProtocol::kOcspOnly, RevProtocol::kBoth}) {
        for (bool ev : {false, true}) {
          TestCase test;
          test.id = next_id++;
          test.num_intermediates = k;
          test.revoked_element = revoked;
          test.protocol = protocol;
          test.ev = ev;
          suite.push_back(test);
        }
      }
    }
  }

  // B. Unavailable-revocation-information cases: 140.
  struct FailureConfig {
    RevProtocol protocol;
    FailureMode mode;
  };
  const FailureConfig kFailures[] = {
      {RevProtocol::kCrlOnly, FailureMode::kNxdomain},
      {RevProtocol::kCrlOnly, FailureMode::kHttp404},
      {RevProtocol::kCrlOnly, FailureMode::kTimeout},
      {RevProtocol::kOcspOnly, FailureMode::kNxdomain},
      {RevProtocol::kOcspOnly, FailureMode::kHttp404},
      {RevProtocol::kOcspOnly, FailureMode::kTimeout},
      {RevProtocol::kOcspOnly, FailureMode::kOcspUnknown},
  };
  for (int k = 0; k <= 3; ++k) {
    for (int element = 0; element <= k; ++element) {
      for (const FailureConfig& failure : kFailures) {
        for (bool ev : {false, true}) {
          TestCase test;
          test.id = next_id++;
          test.num_intermediates = k;
          test.protocol = failure.protocol;
          test.ev = ev;
          test.failure = failure.mode;
          test.failure_element = element;
          suite.push_back(test);
        }
      }
    }
  }

  // C. OCSP Stapling cases: 20. The responder is firewalled from the client
  // in all of them, so the staple is the only channel.
  for (int k = 0; k <= 1; ++k) {
    for (bool ev : {false, true}) {
      for (ocsp::CertStatus status :
           {ocsp::CertStatus::kGood, ocsp::CertStatus::kRevoked,
            ocsp::CertStatus::kUnknown}) {
        TestCase test;
        test.id = next_id++;
        test.num_intermediates = k;
        test.protocol = RevProtocol::kOcspOnly;
        test.ev = ev;
        test.stapling = true;
        test.staple_status = status;
        suite.push_back(test);
      }
    }
  }
  for (int k = 1; k <= 3; ++k) {
    for (ocsp::CertStatus status :
         {ocsp::CertStatus::kGood, ocsp::CertStatus::kRevoked}) {
      TestCase test;
      test.id = next_id++;
      test.num_intermediates = k;
      test.protocol = RevProtocol::kOcspOnly;
      test.stapling = true;
      test.multi_staple = true;
      test.staple_status = status;
      suite.push_back(test);
    }
  }
  for (ocsp::CertStatus status :
       {ocsp::CertStatus::kRevoked, ocsp::CertStatus::kUnknown}) {
    TestCase test;
    test.id = next_id++;
    test.num_intermediates = 1;
    test.protocol = RevProtocol::kOcspOnly;
    test.stapling = true;
    test.staple_status = status;
    test.server_refuses_bad_staple = true;
    suite.push_back(test);
  }

  assert(suite.size() == 244);
  return suite;
}

TestEnvironment::TestEnvironment(const TestCase& test, std::uint64_t seed,
                                 util::Timestamp now)
    : test_(test), now_(now) {
  util::Rng rng(seed ^ (static_cast<std::uint64_t>(test.id) * 0x9E3779B97F4A7C15ull));
  const std::string prefix = "t" + std::to_string(test.id);
  const bool with_crl = test.protocol != RevProtocol::kOcspOnly;
  const bool with_ocsp = test.protocol != RevProtocol::kCrlOnly;

  // Root.
  ca::CertificateAuthority::Options root_options;
  root_options.name = prefix + " Root";
  root_options.domain = prefix + "-root.sim";
  cas_.push_back(ca::CertificateAuthority::CreateRoot(
      root_options, rng, now - 365 * util::kSecondsPerDay));

  // Intermediates, outermost (signed by root) first. cas_[i] issued
  // cas_[i+1]'s certificate; cas_.back() issues the leaf.
  for (int i = 0; i < test.num_intermediates; ++i) {
    ca::CertificateAuthority::Options options;
    options.name = prefix + " Int" + std::to_string(test.num_intermediates - i);
    options.domain = prefix + "-int" + std::to_string(test.num_intermediates - i) + ".sim";
    cas_.push_back(cas_.back()->CreateIntermediate(
        options, rng, now - 180 * util::kSecondsPerDay,
        4 * 365 * util::kSecondsPerDay, with_crl, with_ocsp));
  }

  // Leaf.
  ca::CertificateAuthority::IssueOptions issue;
  issue.common_name = prefix + ".example.sim";
  issue.ev = test.ev;
  issue.include_crl_url = with_crl;
  issue.include_ocsp_url = with_ocsp;
  issue.not_before = now - 30 * util::kSecondsPerDay;
  issue.lifetime_seconds = 365 * util::kSecondsPerDay;
  leaf_ = cas_.back()->Issue(issue, rng);

  // Wire every CA's CRL/OCSP endpoints into this test's private network.
  for (auto& ca : cas_) ca->RegisterEndpoints(&net_);

  roots_.Add(cas_.front()->cert());

  // Chain element e (0 = leaf, e >= 1 = intermediate) maps to:
  //   certificate: e == 0 ? leaf : cas_[cas_.size() - e]->cert()
  //   issuing CA:  cas_[cas_.size() - 1 - e]
  auto element_serial = [&](int e) -> const x509::Serial& {
    return e == 0 ? leaf_->tbs.serial
                  : cas_[cas_.size() - static_cast<std::size_t>(e)]->cert()->tbs.serial;
  };
  auto issuer_ca = [&](int e) -> ca::CertificateAuthority& {
    return *cas_[cas_.size() - 1 - static_cast<std::size_t>(e)];
  };

  // Revocation.
  if (test.revoked_element >= 0) {
    issuer_ca(test.revoked_element)
        .Revoke(element_serial(test.revoked_element),
                now - 10 * util::kSecondsPerDay,
                x509::ReasonCode::kKeyCompromise);
  }

  // Failure injection on the failing element's revocation endpoints.
  if (test.failure != FailureMode::kNone) {
    ca::CertificateAuthority& ca = issuer_ca(test.failure_element);
    switch (test.failure) {
      case FailureMode::kNxdomain:
        net_.SetDnsFailure(ca.CrlHost(), true);
        net_.SetDnsFailure(ca.OcspHost(), true);
        break;
      case FailureMode::kTimeout:
        net_.SetUnresponsive(ca.CrlHost(), true);
        net_.SetUnresponsive(ca.OcspHost(), true);
        break;
      case FailureMode::kHttp404: {
        auto handler404 = [](const net::HttpRequest&, util::Timestamp) {
          return net::HttpResponse{.status = 404, .body = {}, .max_age = 0};
        };
        net_.AddHost(ca.CrlHost(), handler404);
        net_.AddHost(ca.OcspHost(), handler404);
        break;
      }
      case FailureMode::kOcspUnknown:
        ca.responder().Remove(element_serial(test.failure_element));
        break;
      case FailureMode::kOcspTimeout:
        net_.SetUnresponsive(ca.OcspHost(), true);
        break;
      case FailureMode::kNone:
        break;
    }
  }

  // Stapling setup.
  if (test.stapling) {
    switch (test.staple_status) {
      case ocsp::CertStatus::kGood:
        break;
      case ocsp::CertStatus::kRevoked:
        issuer_ca(0).Revoke(leaf_->tbs.serial, now - 10 * util::kSecondsPerDay,
                            x509::ReasonCode::kKeyCompromise);
        break;
      case ocsp::CertStatus::kUnknown:
        issuer_ca(0).responder().Remove(leaf_->tbs.serial);
        break;
    }
    // Firewall the responder: the staple is the only channel (§6.1).
    if (!test.staple_responder_reachable)
      net_.SetUnresponsive(issuer_ca(0).OcspHost(), true);
  }

  // TLS server configuration.
  server_config_.chain_der.push_back(leaf_->der);
  for (int e = 1; e <= test.num_intermediates; ++e) {
    server_config_.chain_der.push_back(
        Bytes(cas_[cas_.size() - static_cast<std::size_t>(e)]->cert()->der));
  }
  server_config_.stapling_enabled = test.stapling;
  server_config_.multi_staple_enabled = test.multi_staple;
  server_config_.staple_requires_cache = false;
  server_config_.staple_any_status = !test.server_refuses_bad_staple;
  if (test.stapling) {
    ca::CertificateAuthority* leaf_issuer = &issuer_ca(0);
    const x509::Serial leaf_serial = leaf_->tbs.serial;
    server_config_.fetch_leaf_staple = [leaf_issuer,
                                        leaf_serial](util::Timestamp t) {
      return leaf_issuer->responder().StatusFor(leaf_serial, t).der;
    };
    if (test.multi_staple) {
      for (int e = 0; e <= test.num_intermediates; ++e) {
        ca::CertificateAuthority* issuer = &issuer_ca(e);
        const x509::Serial serial = element_serial(e);
        server_config_.fetch_chain_staples.push_back(
            [issuer, serial](util::Timestamp t) {
              return issuer->responder().StatusFor(serial, t).der;
            });
      }
    }
  }
}

VisitOutcome TestEnvironment::Run(const Policy& policy) {
  tls::TlsServer server(server_config_);  // fresh staple cache per visit
  Client client(policy, &net_, roots_);
  return client.Visit(server, now_);
}

VisitOutcome RunCase(const TestCase& test, const Policy& policy,
                     std::uint64_t seed, util::Timestamp now) {
  TestEnvironment env(test, seed, now);
  return env.Run(policy);
}

}  // namespace rev::browser
