// ASN.1 OBJECT IDENTIFIER values, plus the well-known OIDs this library uses.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace rev::asn1 {

class Oid {
 public:
  Oid() = default;
  Oid(std::initializer_list<std::uint32_t> components)
      : components_(components) {}

  // Parses dotted-decimal form ("1.2.840.113549.1.1.11").
  static std::optional<Oid> Parse(std::string_view dotted);

  // DER content octets (without tag/length).
  Bytes EncodeContent() const;
  static std::optional<Oid> DecodeContent(BytesView content);

  std::string ToString() const;
  const std::vector<std::uint32_t>& components() const { return components_; }
  bool Empty() const { return components_.empty(); }

  friend bool operator==(const Oid&, const Oid&) = default;
  friend auto operator<=>(const Oid&, const Oid&) = default;

 private:
  std::vector<std::uint32_t> components_;
};

// Well-known OIDs.
namespace oids {

// Signature algorithms.
const Oid& Sha256WithRsa();        // 1.2.840.113549.1.1.11
const Oid& RsaEncryption();        // 1.2.840.113549.1.1.1
const Oid& SimSha256();            // 1.3.6.1.4.1.55555.1.1 (private arc, sim scheme)
const Oid& Sha256();               // 2.16.840.1.101.3.4.2.1

// Name attribute types.
const Oid& CommonName();           // 2.5.4.3
const Oid& OrganizationName();     // 2.5.4.10
const Oid& CountryName();          // 2.5.4.6

// Certificate extensions.
const Oid& BasicConstraints();     // 2.5.29.19
const Oid& KeyUsage();             // 2.5.29.15
const Oid& CrlDistributionPoints();// 2.5.29.31
const Oid& AuthorityInfoAccess();  // 1.3.6.1.5.5.7.1.1
const Oid& CertificatePolicies();  // 2.5.29.32
const Oid& SubjectAltName();       // 2.5.29.17
const Oid& SubjectKeyIdentifier(); // 2.5.29.14
const Oid& NameConstraints();      // 2.5.29.30
const Oid& AuthorityKeyIdentifier(); // 2.5.29.35
const Oid& CrlReason();            // 2.5.29.21
const Oid& CrlNumber();            // 2.5.29.20

// Access method for AIA.
const Oid& AdOcsp();               // 1.3.6.1.5.5.7.48.1
const Oid& AdCaIssuers();          // 1.3.6.1.5.5.7.48.2

// EV policy (the Verisign EV OID the paper uses for its test suite).
const Oid& VerisignEvPolicy();     // 2.16.840.1.113733.1.7.23.6

// OCSP.
const Oid& OcspBasic();            // 1.3.6.1.5.5.7.48.1.1
const Oid& OcspNonce();            // 1.3.6.1.5.5.7.48.1.2

}  // namespace oids

}  // namespace rev::asn1
