// DER encoding (the strict, canonical subset of BER used by X.509).
//
// Each function returns a complete TLV as a byte vector; composite values
// are built by concatenating child encodings into a SEQUENCE/SET wrapper.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "asn1/oid.h"
#include "util/bytes.h"
#include "util/time.h"

namespace rev::asn1 {

// Universal tag numbers (with constructed bit where applicable).
inline constexpr std::uint8_t kTagBoolean = 0x01;
inline constexpr std::uint8_t kTagInteger = 0x02;
inline constexpr std::uint8_t kTagBitString = 0x03;
inline constexpr std::uint8_t kTagOctetString = 0x04;
inline constexpr std::uint8_t kTagNull = 0x05;
inline constexpr std::uint8_t kTagOid = 0x06;
inline constexpr std::uint8_t kTagEnumerated = 0x0A;
inline constexpr std::uint8_t kTagUtf8String = 0x0C;
inline constexpr std::uint8_t kTagPrintableString = 0x13;
inline constexpr std::uint8_t kTagIa5String = 0x16;
inline constexpr std::uint8_t kTagUtcTime = 0x17;
inline constexpr std::uint8_t kTagGeneralizedTime = 0x18;
inline constexpr std::uint8_t kTagSequence = 0x30;
inline constexpr std::uint8_t kTagSet = 0x31;

// Context-specific tag helpers.
// Primitive/implicit: [n] content. Constructed/explicit: [n] { inner-TLV }.
std::uint8_t ContextTag(unsigned n, bool constructed);

// Core TLV assembly: tag byte + DER definite length + content.
Bytes Tlv(std::uint8_t tag, BytesView content);

// Number of bytes Tlv() will produce for a content of length n (header only).
std::size_t HeaderSize(std::size_t content_len);

Bytes EncodeBoolean(bool value);
Bytes EncodeInteger(std::int64_t value);
// Unsigned magnitude (big-endian) as INTEGER; prepends 0x00 when the top bit
// is set, encodes zero as a single 0x00. Used for serials and RSA values.
Bytes EncodeIntegerUnsigned(BytesView magnitude_be);
Bytes EncodeEnumerated(std::int64_t value);
Bytes EncodeNull();
Bytes EncodeOid(const Oid& oid);
Bytes EncodeOctetString(BytesView content);
Bytes EncodeBitString(BytesView content, unsigned unused_bits = 0);
Bytes EncodeUtf8String(std::string_view s);
Bytes EncodePrintableString(std::string_view s);
Bytes EncodeIa5String(std::string_view s);

// X.509 Time: UTCTime for years in [1950, 2049], GeneralizedTime otherwise.
Bytes EncodeTime(util::Timestamp ts);
Bytes EncodeUtcTime(util::Timestamp ts);
Bytes EncodeGeneralizedTime(util::Timestamp ts);

// SEQUENCE/SET from already-encoded children, concatenated in order.
Bytes EncodeSequence(const std::vector<Bytes>& children);
Bytes EncodeSet(const std::vector<Bytes>& children);

// Explicitly tagged: [n] { child }. Constructed.
Bytes EncodeContextExplicit(unsigned n, BytesView child_tlv);
// Implicitly tagged primitive: [n] with raw content octets.
Bytes EncodeContextPrimitive(unsigned n, BytesView content);
// Implicitly tagged constructed: [n] with concatenated child TLVs as content.
Bytes EncodeContextConstructed(unsigned n, BytesView content);

// Concatenates TLVs (content of a SEQUENCE under construction).
Bytes Concat(const std::vector<Bytes>& parts);

}  // namespace rev::asn1
