#include "asn1/writer.h"

#include <cassert>
#include <cstdio>

namespace rev::asn1 {

std::uint8_t ContextTag(unsigned n, bool constructed) {
  assert(n < 31);
  return static_cast<std::uint8_t>(0x80 | (constructed ? 0x20 : 0x00) | n);
}

std::size_t HeaderSize(std::size_t content_len) {
  if (content_len < 0x80) return 2;
  std::size_t len_bytes = 0;
  for (std::size_t v = content_len; v; v >>= 8) ++len_bytes;
  return 2 + len_bytes;
}

Bytes Tlv(std::uint8_t tag, BytesView content) {
  Bytes out;
  out.reserve(HeaderSize(content.size()) + content.size());
  out.push_back(tag);
  const std::size_t n = content.size();
  if (n < 0x80) {
    out.push_back(static_cast<std::uint8_t>(n));
  } else {
    std::uint8_t len_be[8];
    int len_bytes = 0;
    for (std::size_t v = n; v; v >>= 8)
      len_be[len_bytes++] = static_cast<std::uint8_t>(v & 0xFF);
    out.push_back(static_cast<std::uint8_t>(0x80 | len_bytes));
    for (int i = len_bytes - 1; i >= 0; --i) out.push_back(len_be[i]);
  }
  Append(out, content);
  return out;
}

Bytes EncodeBoolean(bool value) {
  const std::uint8_t content = value ? 0xFF : 0x00;
  return Tlv(kTagBoolean, BytesView(&content, 1));
}

namespace {
Bytes IntegerContent(std::int64_t value) {
  // Two's-complement, minimal length.
  Bytes content;
  bool more = true;
  while (more) {
    const std::uint8_t byte = static_cast<std::uint8_t>(value & 0xFF);
    value >>= 8;
    // Finished when remaining bits are a pure sign extension of this byte.
    more = !((value == 0 && !(byte & 0x80)) || (value == -1 && (byte & 0x80)));
    content.push_back(byte);
  }
  // Bytes were collected little-endian; reverse.
  return Bytes(content.rbegin(), content.rend());
}
}  // namespace

Bytes EncodeInteger(std::int64_t value) {
  return Tlv(kTagInteger, IntegerContent(value));
}

Bytes EncodeIntegerUnsigned(BytesView magnitude_be) {
  Bytes content;
  std::size_t skip = 0;
  while (skip < magnitude_be.size() && magnitude_be[skip] == 0) ++skip;
  if (skip == magnitude_be.size()) {
    content.push_back(0x00);
  } else {
    if (magnitude_be[skip] & 0x80) content.push_back(0x00);
    content.insert(content.end(), magnitude_be.begin() + static_cast<std::ptrdiff_t>(skip),
                   magnitude_be.end());
  }
  return Tlv(kTagInteger, content);
}

Bytes EncodeEnumerated(std::int64_t value) {
  return Tlv(kTagEnumerated, IntegerContent(value));
}

Bytes EncodeNull() { return Tlv(kTagNull, {}); }

Bytes EncodeOid(const Oid& oid) { return Tlv(kTagOid, oid.EncodeContent()); }

Bytes EncodeOctetString(BytesView content) {
  return Tlv(kTagOctetString, content);
}

Bytes EncodeBitString(BytesView content, unsigned unused_bits) {
  Bytes inner;
  inner.reserve(content.size() + 1);
  inner.push_back(static_cast<std::uint8_t>(unused_bits));
  Append(inner, content);
  return Tlv(kTagBitString, inner);
}

Bytes EncodeUtf8String(std::string_view s) {
  return Tlv(kTagUtf8String, ToBytes(s));
}

Bytes EncodePrintableString(std::string_view s) {
  return Tlv(kTagPrintableString, ToBytes(s));
}

Bytes EncodeIa5String(std::string_view s) {
  return Tlv(kTagIa5String, ToBytes(s));
}

Bytes EncodeUtcTime(util::Timestamp ts) {
  const util::CivilTime ct = util::ToCivil(ts);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d%02d%02d%02d%02d%02dZ", ct.year % 100,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return Tlv(kTagUtcTime, ToBytes(buf));
}

Bytes EncodeGeneralizedTime(util::Timestamp ts) {
  const util::CivilTime ct = util::ToCivil(ts);
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%04d%02d%02d%02d%02d%02dZ", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return Tlv(kTagGeneralizedTime, ToBytes(buf));
}

Bytes EncodeTime(util::Timestamp ts) {
  const int year = util::ToCivil(ts).year;
  return (year >= 1950 && year <= 2049) ? EncodeUtcTime(ts)
                                        : EncodeGeneralizedTime(ts);
}

Bytes Concat(const std::vector<Bytes>& parts) {
  std::size_t total = 0;
  for (const Bytes& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const Bytes& p : parts) Append(out, p);
  return out;
}

Bytes EncodeSequence(const std::vector<Bytes>& children) {
  return Tlv(kTagSequence, Concat(children));
}

Bytes EncodeSet(const std::vector<Bytes>& children) {
  return Tlv(kTagSet, Concat(children));
}

Bytes EncodeContextExplicit(unsigned n, BytesView child_tlv) {
  return Tlv(ContextTag(n, /*constructed=*/true), child_tlv);
}

Bytes EncodeContextPrimitive(unsigned n, BytesView content) {
  return Tlv(ContextTag(n, /*constructed=*/false), content);
}

Bytes EncodeContextConstructed(unsigned n, BytesView content) {
  return Tlv(ContextTag(n, /*constructed=*/true), content);
}

}  // namespace rev::asn1
