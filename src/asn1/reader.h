// DER decoding with strict validation (definite, minimal lengths only).
//
// A Reader is a non-owning cursor over a byte span; nested structures are
// read by materializing a child Reader over the content octets. All methods
// return false (without advancing past the error) on malformed input.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "asn1/oid.h"
#include "util/bytes.h"
#include "util/time.h"

namespace rev::asn1 {

class Reader {
 public:
  Reader() = default;
  explicit Reader(BytesView data) : data_(data) {}

  bool Empty() const { return pos_ >= data_.size(); }
  std::size_t Remaining() const { return data_.size() - pos_; }

  // Peeks the tag byte of the next TLV (false if empty).
  bool PeekTag(std::uint8_t* tag) const;

  // True if the next TLV has the given tag.
  bool NextIs(std::uint8_t tag) const;

  // Reads one TLV: outputs the tag and a view of the content octets.
  bool ReadTlv(std::uint8_t* tag, BytesView* content);

  // Reads one TLV with a required tag.
  bool ReadTagged(std::uint8_t tag, BytesView* content);

  // Reads the entire next TLV including its header (for extracting the raw
  // bytes of a signed sub-structure such as TBSCertificate).
  bool ReadRawTlv(BytesView* tlv);

  // Typed readers -----------------------------------------------------------

  bool ReadSequence(Reader* inner);
  bool ReadSet(Reader* inner);
  bool ReadBoolean(bool* value);
  // INTEGER that must fit in int64 (two's complement).
  bool ReadInteger(std::int64_t* value);
  // INTEGER as unsigned big-endian magnitude; fails on negative values.
  bool ReadIntegerUnsigned(Bytes* magnitude_be);
  // Zero-copy variant: a view of the magnitude (sign-padding byte stripped),
  // aliasing the input buffer.
  bool ReadIntegerUnsignedView(BytesView* magnitude_be);
  bool ReadEnumerated(std::int64_t* value);
  bool ReadNull();
  bool ReadOid(Oid* oid);
  bool ReadOctetString(BytesView* content);
  bool ReadBitString(BytesView* content, unsigned* unused_bits);
  // Any of UTF8String / PrintableString / IA5String.
  bool ReadAnyString(std::string* s);
  bool ReadStringTagged(std::uint8_t tag, std::string* s);
  // UTCTime or GeneralizedTime.
  bool ReadTime(util::Timestamp* ts);

  // Context-specific helpers -------------------------------------------------

  // True if next TLV is context tag [n] (constructed or primitive).
  bool NextIsContext(unsigned n) const;
  // Reads explicit [n] { ... }, materializing a Reader over the inner TLVs.
  bool ReadContextExplicit(unsigned n, Reader* inner);
  // Reads implicit [n] content octets.
  bool ReadContextPrimitive(unsigned n, BytesView* content);
  // Reads implicit constructed [n], materializing a Reader over the content.
  bool ReadContextConstructed(unsigned n, Reader* inner);

 private:
  // Parses the header at pos_; on success sets *tag, *header_len, *content_len.
  bool ParseHeader(std::uint8_t* tag, std::size_t* header_len,
                   std::size_t* content_len) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

// Parses a DER Time content (UTCTime "YYMMDDHHMMSSZ" with the RFC 5280 sliding
// window, or GeneralizedTime "YYYYMMDDHHMMSSZ").
std::optional<util::Timestamp> ParseTimeContent(std::uint8_t tag,
                                                BytesView content);

}  // namespace rev::asn1
