#include "asn1/oid.h"

namespace rev::asn1 {

std::optional<Oid> Oid::Parse(std::string_view dotted) {
  Oid oid;
  std::uint64_t current = 0;
  bool have_digit = false;
  for (char c : dotted) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<std::uint64_t>(c - '0');
      if (current > 0xFFFFFFFFull) return std::nullopt;
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit) return std::nullopt;
      oid.components_.push_back(static_cast<std::uint32_t>(current));
      current = 0;
      have_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit) return std::nullopt;
  oid.components_.push_back(static_cast<std::uint32_t>(current));
  if (oid.components_.size() < 2) return std::nullopt;
  if (oid.components_[0] > 2) return std::nullopt;
  if (oid.components_[0] < 2 && oid.components_[1] >= 40) return std::nullopt;
  return oid;
}

Bytes Oid::EncodeContent() const {
  Bytes out;
  if (components_.size() < 2) return out;
  auto encode_base128 = [&out](std::uint64_t v) {
    std::uint8_t tmp[10];
    int n = 0;
    do {
      tmp[n++] = static_cast<std::uint8_t>(v & 0x7F);
      v >>= 7;
    } while (v);
    for (int i = n - 1; i >= 0; --i)
      out.push_back(static_cast<std::uint8_t>(tmp[i] | (i ? 0x80 : 0x00)));
  };
  encode_base128(static_cast<std::uint64_t>(components_[0]) * 40 +
                 components_[1]);
  for (std::size_t i = 2; i < components_.size(); ++i)
    encode_base128(components_[i]);
  return out;
}

std::optional<Oid> Oid::DecodeContent(BytesView content) {
  if (content.empty()) return std::nullopt;
  Oid oid;
  std::size_t i = 0;
  bool first = true;
  while (i < content.size()) {
    std::uint64_t v = 0;
    bool terminated = false;
    // Reject non-minimal leading 0x80 continuation octet.
    if (content[i] == 0x80) return std::nullopt;
    while (i < content.size()) {
      const std::uint8_t b = content[i++];
      if (v > (0xFFFFFFFFull >> 7)) return std::nullopt;  // overflow guard
      v = (v << 7) | (b & 0x7F);
      if (!(b & 0x80)) {
        terminated = true;
        break;
      }
    }
    if (!terminated) return std::nullopt;
    if (first) {
      first = false;
      if (v < 40) {
        oid.components_.push_back(0);
        oid.components_.push_back(static_cast<std::uint32_t>(v));
      } else if (v < 80) {
        oid.components_.push_back(1);
        oid.components_.push_back(static_cast<std::uint32_t>(v - 40));
      } else {
        oid.components_.push_back(2);
        oid.components_.push_back(static_cast<std::uint32_t>(v - 80));
      }
    } else {
      oid.components_.push_back(static_cast<std::uint32_t>(v));
    }
  }
  return oid;
}

std::string Oid::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i) out.push_back('.');
    out += std::to_string(components_[i]);
  }
  return out;
}

namespace oids {

#define REV_DEFINE_OID(name, ...)            \
  const Oid& name() {                        \
    static const Oid oid{__VA_ARGS__};       \
    return oid;                              \
  }

REV_DEFINE_OID(Sha256WithRsa, 1, 2, 840, 113549, 1, 1, 11)
REV_DEFINE_OID(RsaEncryption, 1, 2, 840, 113549, 1, 1, 1)
REV_DEFINE_OID(SimSha256, 1, 3, 6, 1, 4, 1, 55555, 1, 1)
REV_DEFINE_OID(Sha256, 2, 16, 840, 1, 101, 3, 4, 2, 1)
REV_DEFINE_OID(CommonName, 2, 5, 4, 3)
REV_DEFINE_OID(OrganizationName, 2, 5, 4, 10)
REV_DEFINE_OID(CountryName, 2, 5, 4, 6)
REV_DEFINE_OID(BasicConstraints, 2, 5, 29, 19)
REV_DEFINE_OID(KeyUsage, 2, 5, 29, 15)
REV_DEFINE_OID(CrlDistributionPoints, 2, 5, 29, 31)
REV_DEFINE_OID(AuthorityInfoAccess, 1, 3, 6, 1, 5, 5, 7, 1, 1)
REV_DEFINE_OID(CertificatePolicies, 2, 5, 29, 32)
REV_DEFINE_OID(SubjectAltName, 2, 5, 29, 17)
REV_DEFINE_OID(SubjectKeyIdentifier, 2, 5, 29, 14)
REV_DEFINE_OID(NameConstraints, 2, 5, 29, 30)
REV_DEFINE_OID(AuthorityKeyIdentifier, 2, 5, 29, 35)
REV_DEFINE_OID(CrlReason, 2, 5, 29, 21)
REV_DEFINE_OID(CrlNumber, 2, 5, 29, 20)
REV_DEFINE_OID(AdOcsp, 1, 3, 6, 1, 5, 5, 7, 48, 1)
REV_DEFINE_OID(AdCaIssuers, 1, 3, 6, 1, 5, 5, 7, 48, 2)
REV_DEFINE_OID(VerisignEvPolicy, 2, 16, 840, 1, 113733, 1, 7, 23, 6)
REV_DEFINE_OID(OcspBasic, 1, 3, 6, 1, 5, 5, 7, 48, 1, 1)
REV_DEFINE_OID(OcspNonce, 1, 3, 6, 1, 5, 5, 7, 48, 1, 2)

#undef REV_DEFINE_OID

}  // namespace oids

}  // namespace rev::asn1
