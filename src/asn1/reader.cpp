#include "asn1/reader.h"

#include "asn1/writer.h"

namespace rev::asn1 {

bool Reader::ParseHeader(std::uint8_t* tag, std::size_t* header_len,
                         std::size_t* content_len) const {
  if (pos_ + 2 > data_.size()) return false;
  *tag = data_[pos_];
  const std::uint8_t first = data_[pos_ + 1];
  if (first < 0x80) {
    *header_len = 2;
    *content_len = first;
  } else {
    const std::size_t len_bytes = first & 0x7F;
    if (len_bytes == 0 || len_bytes > sizeof(std::size_t)) return false;
    if (pos_ + 2 + len_bytes > data_.size()) return false;
    std::size_t n = 0;
    for (std::size_t i = 0; i < len_bytes; ++i)
      n = (n << 8) | data_[pos_ + 2 + i];
    // DER: length must use the minimal form.
    if (n < 0x80) return false;
    if (len_bytes > 1 && data_[pos_ + 2] == 0) return false;
    *header_len = 2 + len_bytes;
    *content_len = n;
  }
  return pos_ + *header_len + *content_len <= data_.size();
}

bool Reader::PeekTag(std::uint8_t* tag) const {
  if (pos_ >= data_.size()) return false;
  *tag = data_[pos_];
  return true;
}

bool Reader::NextIs(std::uint8_t tag) const {
  std::uint8_t t;
  return PeekTag(&t) && t == tag;
}

bool Reader::ReadTlv(std::uint8_t* tag, BytesView* content) {
  std::size_t header_len, content_len;
  if (!ParseHeader(tag, &header_len, &content_len)) return false;
  *content = data_.subspan(pos_ + header_len, content_len);
  pos_ += header_len + content_len;
  return true;
}

bool Reader::ReadTagged(std::uint8_t tag, BytesView* content) {
  std::uint8_t t;
  std::size_t header_len, content_len;
  if (!ParseHeader(&t, &header_len, &content_len) || t != tag) return false;
  *content = data_.subspan(pos_ + header_len, content_len);
  pos_ += header_len + content_len;
  return true;
}

bool Reader::ReadRawTlv(BytesView* tlv) {
  std::uint8_t t;
  std::size_t header_len, content_len;
  if (!ParseHeader(&t, &header_len, &content_len)) return false;
  *tlv = data_.subspan(pos_, header_len + content_len);
  pos_ += header_len + content_len;
  return true;
}

bool Reader::ReadSequence(Reader* inner) {
  BytesView content;
  if (!ReadTagged(kTagSequence, &content)) return false;
  *inner = Reader(content);
  return true;
}

bool Reader::ReadSet(Reader* inner) {
  BytesView content;
  if (!ReadTagged(kTagSet, &content)) return false;
  *inner = Reader(content);
  return true;
}

bool Reader::ReadBoolean(bool* value) {
  BytesView content;
  if (!ReadTagged(kTagBoolean, &content) || content.size() != 1) return false;
  // DER: TRUE must be 0xFF.
  if (content[0] != 0x00 && content[0] != 0xFF) return false;
  *value = content[0] == 0xFF;
  return true;
}

namespace {
bool CheckMinimalInteger(BytesView content) {
  if (content.empty()) return false;
  if (content.size() >= 2) {
    // Leading 0x00 only allowed before a byte with high bit set; leading
    // 0xFF only before a byte with high bit clear.
    if (content[0] == 0x00 && !(content[1] & 0x80)) return false;
    if (content[0] == 0xFF && (content[1] & 0x80)) return false;
  }
  return true;
}

bool DecodeInt64(BytesView content, std::int64_t* value) {
  if (!CheckMinimalInteger(content) || content.size() > 8) return false;
  std::int64_t v = (content[0] & 0x80) ? -1 : 0;
  for (std::uint8_t b : content) v = (v << 8) | b;
  *value = v;
  return true;
}
}  // namespace

bool Reader::ReadInteger(std::int64_t* value) {
  BytesView content;
  return ReadTagged(kTagInteger, &content) && DecodeInt64(content, value);
}

bool Reader::ReadIntegerUnsigned(Bytes* magnitude_be) {
  BytesView content;
  if (!ReadTagged(kTagInteger, &content) || !CheckMinimalInteger(content))
    return false;
  if (content[0] & 0x80) return false;  // negative
  std::size_t skip = (content.size() > 1 && content[0] == 0x00) ? 1 : 0;
  magnitude_be->assign(content.begin() + static_cast<std::ptrdiff_t>(skip),
                       content.end());
  return true;
}

bool Reader::ReadIntegerUnsignedView(BytesView* magnitude_be) {
  BytesView content;
  if (!ReadTagged(kTagInteger, &content) || !CheckMinimalInteger(content))
    return false;
  if (content[0] & 0x80) return false;  // negative
  const std::size_t skip = (content.size() > 1 && content[0] == 0x00) ? 1 : 0;
  *magnitude_be = content.subspan(skip);
  return true;
}

bool Reader::ReadEnumerated(std::int64_t* value) {
  BytesView content;
  return ReadTagged(kTagEnumerated, &content) && DecodeInt64(content, value);
}

bool Reader::ReadNull() {
  BytesView content;
  return ReadTagged(kTagNull, &content) && content.empty();
}

bool Reader::ReadOid(Oid* oid) {
  BytesView content;
  if (!ReadTagged(kTagOid, &content)) return false;
  auto decoded = Oid::DecodeContent(content);
  if (!decoded) return false;
  *oid = *std::move(decoded);
  return true;
}

bool Reader::ReadOctetString(BytesView* content) {
  return ReadTagged(kTagOctetString, content);
}

bool Reader::ReadBitString(BytesView* content, unsigned* unused_bits) {
  BytesView inner;
  if (!ReadTagged(kTagBitString, &inner) || inner.empty()) return false;
  if (inner[0] > 7) return false;
  if (unused_bits) *unused_bits = inner[0];
  *content = inner.subspan(1);
  return true;
}

bool Reader::ReadStringTagged(std::uint8_t tag, std::string* s) {
  BytesView content;
  if (!ReadTagged(tag, &content)) return false;
  s->assign(content.begin(), content.end());
  return true;
}

bool Reader::ReadAnyString(std::string* s) {
  std::uint8_t tag;
  if (!PeekTag(&tag)) return false;
  if (tag != kTagUtf8String && tag != kTagPrintableString &&
      tag != kTagIa5String)
    return false;
  return ReadStringTagged(tag, s);
}

std::optional<util::Timestamp> ParseTimeContent(std::uint8_t tag,
                                                BytesView content) {
  auto digits = [&content](std::size_t pos, int len) -> int {
    int v = 0;
    for (std::size_t i = pos; i < pos + static_cast<std::size_t>(len); ++i) {
      if (content[i] < '0' || content[i] > '9') return -1;
      v = v * 10 + (content[i] - '0');
    }
    return v;
  };

  util::CivilTime ct;
  std::size_t rest;
  if (tag == kTagUtcTime) {
    if (content.size() != 13 || content.back() != 'Z') return std::nullopt;
    const int yy = digits(0, 2);
    if (yy < 0) return std::nullopt;
    // RFC 5280 sliding window: 00-49 => 20xx, 50-99 => 19xx.
    ct.year = yy < 50 ? 2000 + yy : 1900 + yy;
    rest = 2;
  } else if (tag == kTagGeneralizedTime) {
    if (content.size() != 15 || content.back() != 'Z') return std::nullopt;
    ct.year = digits(0, 4);
    if (ct.year < 0) return std::nullopt;
    rest = 4;
  } else {
    return std::nullopt;
  }

  ct.month = digits(rest, 2);
  ct.day = digits(rest + 2, 2);
  ct.hour = digits(rest + 4, 2);
  ct.minute = digits(rest + 6, 2);
  ct.second = digits(rest + 8, 2);
  if (ct.month < 1 || ct.month > 12 || ct.day < 1 ||
      ct.day > util::DaysInMonth(ct.year, ct.month) || ct.hour < 0 ||
      ct.hour > 23 || ct.minute < 0 || ct.minute > 59 || ct.second < 0 ||
      ct.second > 59)
    return std::nullopt;
  return util::ToTimestamp(ct);
}

bool Reader::ReadTime(util::Timestamp* ts) {
  std::uint8_t tag;
  if (!PeekTag(&tag)) return false;
  BytesView content;
  if (!ReadTlv(&tag, &content)) return false;
  auto parsed = ParseTimeContent(tag, content);
  if (!parsed) return false;
  *ts = *parsed;
  return true;
}

bool Reader::NextIsContext(unsigned n) const {
  std::uint8_t tag;
  if (!PeekTag(&tag)) return false;
  return (tag & 0xC0) == 0x80 && (tag & 0x1F) == n;
}

bool Reader::ReadContextExplicit(unsigned n, Reader* inner) {
  BytesView content;
  if (!ReadTagged(ContextTag(n, /*constructed=*/true), &content)) return false;
  *inner = Reader(content);
  return true;
}

bool Reader::ReadContextPrimitive(unsigned n, BytesView* content) {
  return ReadTagged(ContextTag(n, /*constructed=*/false), content);
}

bool Reader::ReadContextConstructed(unsigned n, Reader* inner) {
  BytesView content;
  if (!ReadTagged(ContextTag(n, /*constructed=*/true), &content)) return false;
  *inner = Reader(content);
  return true;
}

}  // namespace rev::asn1
