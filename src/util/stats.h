// Lightweight statistics used by the measurement pipeline and benches:
// empirical CDFs (raw and weighted), percentiles, summaries, and a simple
// least-squares fit for the CRL size/entries correlation (Fig. 5).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rev::util {

// Empirical distribution over double-valued samples, each with an optional
// weight. The paper's Fig. 6 contrasts the *raw* CDF of CRL sizes with the
// *certificate-weighted* CDF (each CRL weighted by how many certificates
// point at it); this class supports both by treating weights uniformly.
class Distribution {
 public:
  void Add(double value, double weight = 1.0);

  // Quantile in [0, 1]; linear in the weighted empirical CDF.
  // Returns 0 for an empty distribution.
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }
  double Min() const;
  double Max() const;
  double Mean() const;
  double TotalWeight() const;
  std::size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

  // CDF evaluated at `x`: weighted fraction of samples <= x.
  double CdfAt(double x) const;

  // Evenly spaced (in probability) points of the CDF, suitable for printing
  // a figure series: returns `points` pairs of (value, cumulative_prob).
  std::vector<std::pair<double, double>> CdfSeries(std::size_t points) const;

 private:
  void Sort() const;

  mutable std::vector<std::pair<double, double>> samples_;  // (value, weight)
  mutable bool sorted_ = true;
};

// Simple online mean/variance accumulator (Welford).
class Accumulator {
 public:
  void Add(double x);

  // Rebuilds an accumulator from summary moments (count/mean/min/max) when
  // the per-sample stream is gone — e.g. the serve frontend's latency()
  // compatibility shim reading an obs::Histogram snapshot. Variance is
  // unavailable from those moments and reports 0.
  static Accumulator FromSummary(std::size_t count, double mean, double min,
                                 double max);
  std::size_t Count() const { return n_; }
  double Mean() const { return mean_; }
  double Variance() const;
  double StdDev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Least-squares fit y = slope*x + intercept with Pearson r.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r = 0;
};
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

// Renders a count of bytes as a human-readable string ("51.0 KB", "76.1 MB").
std::string HumanBytes(double bytes);

}  // namespace rev::util
