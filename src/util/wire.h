// Shared wire-format primitives for the distribution and replication
// channels: big-endian integer put/get, length-prefixed blobs, and the
// FNV-1a trailer checksum every cascade/delta/fleet-snapshot blob carries.
// The checksum is the load-bearing piece: a client applies downloaded
// filters (and a replica applies pushed status snapshots) directly to
// revocation decisions, so a truncated or bit-flipped blob must fail
// Deserialize() rather than silently answer "revoked" for the wrong
// certificates (tests/fuzz_test.cpp and tests/fleet_test.cpp pin this).
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace rev::util::wire {

inline void PutU16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void PutU32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void PutU64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline bool GetU16(BytesView data, std::size_t& pos, std::uint16_t* v) {
  if (pos + 2 > data.size()) return false;
  *v = static_cast<std::uint16_t>((data[pos] << 8) | data[pos + 1]);
  pos += 2;
  return true;
}

inline bool GetU32(BytesView data, std::size_t& pos, std::uint32_t* v) {
  if (pos + 4 > data.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v = (*v << 8) | data[pos++];
  return true;
}

inline bool GetU64(BytesView data, std::size_t& pos, std::uint64_t* v) {
  if (pos + 8 > data.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v = (*v << 8) | data[pos++];
  return true;
}

inline void PutBlob(Bytes& out, BytesView blob) {
  PutU32(out, static_cast<std::uint32_t>(blob.size()));
  Append(out, blob);
}

inline bool GetBlob(BytesView data, std::size_t& pos, Bytes* blob) {
  std::uint32_t len;
  if (!GetU32(data, pos, &len) || len > data.size() - pos) return false;
  blob->assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
               data.begin() + static_cast<std::ptrdiff_t>(pos + len));
  pos += len;
  return true;
}

// FNV-1a over `data` — the integrity trailer. Not cryptographic (the
// channel is simulated); it exists to make accidental corruption fail
// closed, which is all the fuzz invariant needs.
inline std::uint64_t Fnv1a(BytesView data) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

// Appends the checksum of everything serialized so far.
inline void SealChecksum(Bytes& out) {
  PutU64(out, Fnv1a(BytesView(out.data(), out.size())));
}

// Verifies and strips the trailer; on success `payload` is the blob minus
// its checksum.
inline bool CheckChecksum(BytesView data, BytesView* payload) {
  if (data.size() < 8) return false;
  const BytesView body = data.first(data.size() - 8);
  std::size_t pos = data.size() - 8;
  std::uint64_t stored;
  if (!GetU64(data, pos, &stored)) return false;
  if (Fnv1a(body) != stored) return false;
  *payload = body;
  return true;
}

}  // namespace rev::util::wire
