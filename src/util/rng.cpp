#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace rev::util {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; splitmix output makes this
  // astronomically unlikely, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? Next() : NextBelow(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  double u = UniformDouble();
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = UniformDouble();
  if (u1 <= 0) u1 = 0x1.0p-53;
  const double u2 = UniformDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Pareto(double xm, double alpha) {
  double u = UniformDouble();
  if (u <= 0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::Poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean > 64) {
    const double v = Normal(mean, std::sqrt(mean));
    return v <= 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double product = UniformDouble();
  while (product > limit) {
    ++k;
    product *= UniformDouble();
  }
  return k;
}

std::uint64_t Rng::Zipf(std::uint64_t n, double s) {
  if (n <= 1) return 0;
  // Rejection-inversion over the continuous envelope 1/x^s.
  const double nd = static_cast<double>(n);
  for (;;) {
    const double u = UniformDouble();
    double x;
    if (s == 1.0) {
      x = std::exp(u * std::log(nd + 1.0));
    } else {
      const double t = std::pow(nd + 1.0, 1.0 - s);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    const std::uint64_t k = static_cast<std::uint64_t>(x);
    if (k >= 1 && k <= n) {
      const double ratio = std::pow(x / static_cast<double>(k), s);
      if (UniformDouble() < 1.0 / ratio) return k - 1;
    }
  }
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double target = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

void Rng::Fill(std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t word = Next();
    for (int b = 0; b < 8; ++b)
      out[i++] = static_cast<std::uint8_t>(word >> (8 * b));
  }
  if (i < n) {
    const std::uint64_t word = Next();
    for (int b = 0; i < n; ++b)
      out[i++] = static_cast<std::uint8_t>(word >> (8 * b));
  }
}

Rng Rng::Fork(std::uint64_t label) {
  return Rng(Next() ^ (label * 0xD1B54A32D192ED03ull));
}

}  // namespace rev::util
