#include "util/time.h"

#include <array>
#include <cstdio>

namespace rev::util {

std::int64_t DaysFromCivil(int y, int m, int d) {
  // Howard Hinnant's algorithm, civil epoch 1970-01-01.
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1; // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilTime CivilFromDays(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  CivilTime ct;
  ct.year = static_cast<int>(y + (m <= 2));
  ct.month = static_cast<int>(m);
  ct.day = static_cast<int>(d);
  return ct;
}

Timestamp ToTimestamp(const CivilTime& ct) {
  return DaysFromCivil(ct.year, ct.month, ct.day) * kSecondsPerDay +
         ct.hour * 3600 + ct.minute * 60 + ct.second;
}

CivilTime ToCivil(Timestamp ts) {
  std::int64_t days = ts / kSecondsPerDay;
  std::int64_t secs = ts % kSecondsPerDay;
  if (secs < 0) {
    secs += kSecondsPerDay;
    --days;
  }
  CivilTime ct = CivilFromDays(days);
  ct.hour = static_cast<int>(secs / 3600);
  ct.minute = static_cast<int>((secs % 3600) / 60);
  ct.second = static_cast<int>(secs % 60);
  return ct;
}

Timestamp MakeDate(int year, int month, int day) {
  return DaysFromCivil(year, month, day) * kSecondsPerDay;
}

int DayOfWeek(Timestamp ts) {
  std::int64_t days = ts / kSecondsPerDay;
  if (ts % kSecondsPerDay < 0) --days;
  // 1970-01-01 was a Thursday (4).
  std::int64_t dow = (days + 4) % 7;
  if (dow < 0) dow += 7;
  return static_cast<int>(dow);
}

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr std::array<int, 13> kDays = {0,  31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[static_cast<std::size_t>(month)];
}

std::string FormatDate(Timestamp ts) {
  const CivilTime ct = ToCivil(ts);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", ct.year, ct.month, ct.day);
  return buf;
}

std::string FormatDateTime(Timestamp ts) {
  const CivilTime ct = ToCivil(ts);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return buf;
}

bool ParseDate(std::string_view s, Timestamp* out) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return false;
  auto digits = [&](int pos, int len, int* value) {
    int v = 0;
    for (int i = pos; i < pos + len; ++i) {
      const char c = s[static_cast<std::size_t>(i)];
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
    }
    *value = v;
    return true;
  };
  int y = 0, m = 0, d = 0;
  if (!digits(0, 4, &y) || !digits(5, 2, &m) || !digits(8, 2, &d)) return false;
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) return false;
  *out = MakeDate(y, m, d);
  return true;
}

int MonthIndex(Timestamp ts) {
  const CivilTime ct = ToCivil(ts);
  return ct.year * 12 + (ct.month - 1);
}

Timestamp StartOfMonth(Timestamp ts) {
  const CivilTime ct = ToCivil(ts);
  return MakeDate(ct.year, ct.month, 1);
}

Timestamp StartOfDay(Timestamp ts) {
  std::int64_t days = ts / kSecondsPerDay;
  if (ts % kSecondsPerDay < 0) --days;
  return days * kSecondsPerDay;
}

}  // namespace rev::util
