// A fixed-size worker pool with a bulk ParallelFor API, used to fan the
// scan-pipeline's chain verification and the revocation crawler's CRL
// fetch+parse across cores (docs/parallelism.md). Work is claimed by atomic
// index so load imbalance (one 22 MB CRL among hundreds of tiny ones) does
// not idle workers; exceptions thrown by tasks are captured and the first
// one is rethrown on the calling thread after the batch drains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rev::util {

class ThreadPool {
 public:
  // `threads` == 0 picks DefaultThreads() (hardware concurrency);
  // `threads` == 1 spawns no workers at all and ParallelFor degrades to a
  // plain loop on the calling thread — the exact serial execution path.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of threads doing work (>= 1; 1 means inline execution).
  unsigned threads() const { return threads_; }

  // Runs fn(i) for every i in [0, count), blocking until all invocations
  // complete. Indices are claimed dynamically, so iteration *order* across
  // workers is unspecified — callers that need deterministic output must
  // write results into per-index slots and merge after the call returns.
  // If any invocation throws, remaining unclaimed indices are skipped and
  // the first captured exception is rethrown here once the batch drains.
  // Not reentrant: must not be called from inside a task, and only one
  // ParallelFor may be in flight per pool at a time.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  // hardware_concurrency(), clamped to >= 1 (the API may report 0).
  static unsigned DefaultThreads();

 private:
  void WorkerLoop();
  void RunBatch();

  const unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  // Batch state, valid while a ParallelFor is in flight (guarded by mu_
  // except where noted).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};   // next unclaimed index
  std::atomic<std::size_t> executed_{0};  // tasks actually run this batch
  std::atomic<bool> failed_{false};    // a task threw; skip remaining work
  std::exception_ptr error_;           // first exception, rethrown by caller
  unsigned active_ = 0;                // workers still inside RunBatch
  std::uint64_t generation_ = 0;       // bumped per batch to wake workers
  bool stop_ = false;
};

}  // namespace rev::util
