#include "util/thread_pool.h"

namespace rev::util {

unsigned ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? DefaultThreads() : threads) {
  if (threads_ < 2) return;  // inline mode: no workers
  workers_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunBatch() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_ || failed_.load(std::memory_order_relaxed)) return;
    try {
      (*fn_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    RunBatch();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    // Serial path: same iteration order and exception behavior as a loop.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  count_ = count;
  next_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  active_ = static_cast<unsigned>(workers_.size());
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr error = std::move(error_);
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace rev::util
