#include "util/thread_pool.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rev::util {

namespace {

// Pool-wide instruments (docs/observability.md): `threadpool.queued` is the
// number of ParallelFor indices not yet executed across all pools;
// `threadpool.task_ns` times each task body. Lock-free updates, so the
// instrumentation does not perturb scheduling.
obs::Gauge& QueuedGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("threadpool.queued");
  return gauge;
}

obs::Histogram& TaskHistogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("threadpool.task_ns");
  return histogram;
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

unsigned ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? DefaultThreads() : threads) {
  if (threads_ < 2) return;  // inline mode: no workers
  workers_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunBatch() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_ || failed_.load(std::memory_order_relaxed)) return;
    const std::uint64_t start = NowNs();
    try {
      (*fn_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
    TaskHistogram().Record(NowNs() - start);
    QueuedGauge().Sub(1);
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    RunBatch();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  obs::Span span("threadpool.parallel_for");
  // The queue-depth gauge rises by the batch size and falls per executed
  // task; this guard settles the difference for indices that never ran
  // (exception unwinds skip the remainder of the batch).
  executed_.store(0, std::memory_order_relaxed);
  QueuedGauge().Add(static_cast<std::int64_t>(count));
  struct Settle {
    ThreadPool* pool;
    std::size_t count;
    ~Settle() {
      const std::size_t executed =
          pool->executed_.load(std::memory_order_relaxed);
      QueuedGauge().Sub(static_cast<std::int64_t>(count - executed));
    }
  } settle{this, count};

  if (workers_.empty()) {
    // Serial path: same iteration order and exception behavior as a loop.
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t start = NowNs();
      fn(i);
      TaskHistogram().Record(NowNs() - start);
      QueuedGauge().Sub(1);
      executed_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  count_ = count;
  next_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  active_ = static_cast<unsigned>(workers_.size());
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr error = std::move(error_);
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace rev::util
