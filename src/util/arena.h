// Chunked bump allocator with pointer-stable storage.
//
// The corpus layer (core::CertCorpus) copies every certificate's DER into an
// Arena and hands out views into it; those views must stay valid while rows
// keep being appended. The Arena therefore never reallocates or moves a
// chunk: when the current chunk is full a new one is added, and oversized
// requests get a dedicated chunk of their own. This is the stability
// contract docs/corpus.md documents and tests/corpus_test.cpp asserts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "util/bytes.h"

namespace rev::util {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 1u << 20)
      : chunk_bytes_(chunk_bytes ? chunk_bytes : 1u << 20) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Allocates `n` bytes of uninitialized, never-moving storage. n == 0
  // returns an empty span.
  std::span<std::uint8_t> Allocate(std::size_t n) {
    if (n == 0) return {};
    if (n > chunk_bytes_) {
      // Dedicated chunk, inserted *behind* the current one so the current
      // chunk's remaining tail stays usable.
      auto chunk = std::make_unique<std::uint8_t[]>(n);
      std::uint8_t* data = chunk.get();
      if (chunks_.empty()) {
        chunks_.push_back(std::move(chunk));
        used_in_current_ = chunk_bytes_;  // back() is full: force a new chunk
      } else {
        chunks_.insert(chunks_.end() - 1, std::move(chunk));
      }
      bytes_reserved_ += n;
      bytes_used_ += n;
      return {data, n};
    }
    if (chunks_.empty() || used_in_current_ + n > chunk_bytes_) {
      chunks_.push_back(std::make_unique<std::uint8_t[]>(chunk_bytes_));
      bytes_reserved_ += chunk_bytes_;
      used_in_current_ = 0;
    }
    std::uint8_t* data = chunks_.back().get() + used_in_current_;
    used_in_current_ += n;
    bytes_used_ += n;
    return {data, n};
  }

  // Copies `src` into the arena and returns a stable view of the copy.
  BytesView Copy(BytesView src) {
    std::span<std::uint8_t> dst = Allocate(src.size());
    if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
    return {dst.data(), dst.size()};
  }

  std::string_view CopyString(std::string_view s) {
    std::span<std::uint8_t> dst = Allocate(s.size());
    if (!s.empty()) std::memcpy(dst.data(), s.data(), s.size());
    return {reinterpret_cast<const char*>(dst.data()), dst.size()};
  }

  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  std::size_t num_chunks() const { return chunks_.size(); }

 private:
  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
  std::size_t chunk_bytes_;
  std::size_t used_in_current_ = 0;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace rev::util
