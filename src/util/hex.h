// Hex and base64 codecs for fingerprints, serial numbers, and CRLSet blobs.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace rev::util {

// Lower-case hex encoding.
std::string HexEncode(BytesView data);

// Decodes hex (either case). Returns nullopt on odd length or bad digit.
std::optional<Bytes> HexDecode(std::string_view hex);

// Standard base64 with padding.
std::string Base64Encode(BytesView data);

// Decodes standard base64 (padding required). Returns nullopt on bad input.
std::optional<Bytes> Base64Decode(std::string_view b64);

}  // namespace rev::util
