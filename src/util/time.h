// Civil-time arithmetic on a virtual clock.
//
// The whole library runs on simulated time: a Timestamp is seconds since the
// Unix epoch (UTC), computed with pure civil-calendar arithmetic (Howard
// Hinnant's days_from_civil algorithm) so results are identical on every
// platform and independent of the host clock or timezone database.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rev::util {

// Seconds since 1970-01-01T00:00:00Z.
using Timestamp = std::int64_t;

inline constexpr std::int64_t kSecondsPerDay = 86'400;

// A civil (proleptic Gregorian) date-time, always UTC.
struct CivilTime {
  int year = 1970;
  int month = 1;  // [1, 12]
  int day = 1;    // [1, 31]
  int hour = 0;   // [0, 23]
  int minute = 0; // [0, 59]
  int second = 0; // [0, 59]

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

// Days between 1970-01-01 and the given civil date (may be negative).
std::int64_t DaysFromCivil(int year, int month, int day);

// Inverse of DaysFromCivil.
CivilTime CivilFromDays(std::int64_t days);

// Civil date-time -> Timestamp.
Timestamp ToTimestamp(const CivilTime& ct);

// Timestamp -> civil date-time.
CivilTime ToCivil(Timestamp ts);

// Convenience: midnight UTC of the given date.
Timestamp MakeDate(int year, int month, int day);

// Day-of-week, 0 = Sunday .. 6 = Saturday.
int DayOfWeek(Timestamp ts);

// True if the given year is a Gregorian leap year.
bool IsLeapYear(int year);

// Number of days in the given month of the given year.
int DaysInMonth(int year, int month);

// Formats as "YYYY-MM-DD".
std::string FormatDate(Timestamp ts);

// Formats as "YYYY-MM-DDTHH:MM:SSZ".
std::string FormatDateTime(Timestamp ts);

// Parses "YYYY-MM-DD" (midnight UTC). Returns false on malformed input.
bool ParseDate(std::string_view s, Timestamp* out);

// Index of the month since year 0 (year*12 + month-1); handy for bucketing
// time series by calendar month.
int MonthIndex(Timestamp ts);

// First instant of the month containing `ts`.
Timestamp StartOfMonth(Timestamp ts);

// Midnight UTC of the day containing `ts`.
Timestamp StartOfDay(Timestamp ts);

}  // namespace rev::util
