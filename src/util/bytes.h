// Byte-buffer aliases and small helpers shared across the library.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rev {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

// Appends `src` to the end of `dst`.
inline void Append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

// Appends the raw bytes of a string (no encoding conversion).
inline void Append(Bytes& dst, std::string_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(BytesView b) {
  return std::string(b.begin(), b.end());
}

}  // namespace rev
