#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace rev::util {

void Distribution::Add(double value, double weight) {
  samples_.emplace_back(value, weight);
  sorted_ = false;
}

void Distribution::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Distribution::Quantile(double q) const {
  if (samples_.empty()) return 0;
  // All-zero (or negative) weights mean the distribution is empty for CDF
  // purposes; without this guard `target == 0` and the first sample's
  // `cum >= target` is trivially true, returning an arbitrary value.
  const double total = TotalWeight();
  if (total <= 0) return 0;
  Sort();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total;
  double cum = 0;
  for (const auto& [value, weight] : samples_) {
    cum += weight;
    if (cum >= target) return value;
  }
  return samples_.back().first;
}

double Distribution::Min() const {
  if (samples_.empty()) return 0;
  Sort();
  return samples_.front().first;
}

double Distribution::Max() const {
  if (samples_.empty()) return 0;
  Sort();
  return samples_.back().first;
}

double Distribution::Mean() const {
  const double total = TotalWeight();
  if (total <= 0) return 0;
  double sum = 0;
  for (const auto& [value, weight] : samples_) sum += value * weight;
  return sum / total;
}

double Distribution::TotalWeight() const {
  double total = 0;
  for (const auto& [value, weight] : samples_) {
    (void)value;
    total += weight;
  }
  return total;
}

double Distribution::CdfAt(double x) const {
  const double total = TotalWeight();
  if (total <= 0) return 0;
  Sort();
  double cum = 0;
  for (const auto& [value, weight] : samples_) {
    if (value > x) break;
    cum += weight;
  }
  return cum / total;
}

std::vector<std::pair<double, double>> Distribution::CdfSeries(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(Quantile(q), q);
  }
  return out;
}

void Accumulator::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

Accumulator Accumulator::FromSummary(std::size_t count, double mean,
                                     double min, double max) {
  Accumulator out;
  out.n_ = count;
  out.mean_ = count == 0 ? 0 : mean;
  out.min_ = count == 0 ? 0 : min;
  out.max_ = count == 0 ? 0 : max;
  out.m2_ = 0;  // variance not recoverable from summary moments
  return out;
}

double Accumulator::Variance() const {
  return n_ < 2 ? 0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::StdDev() const { return std::sqrt(Variance()); }

LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx <= 0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r = (syy <= 0) ? 0 : sxy / std::sqrt(sxx * syy);
  return fit;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 3) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, units[unit]);
  return buf;
}

}  // namespace rev::util
