#include "util/hex.h"

#include <array>

namespace rev::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kB64Digits[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int B64Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string HexEncode(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::optional<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexValue(hex[i]);
    const int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string Base64Encode(BytesView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kB64Digits[(n >> 18) & 0x3F]);
    out.push_back(kB64Digits[(n >> 12) & 0x3F]);
    out.push_back(kB64Digits[(n >> 6) & 0x3F]);
    out.push_back(kB64Digits[n & 0x3F]);
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kB64Digits[(n >> 18) & 0x3F]);
    out.push_back(kB64Digits[(n >> 12) & 0x3F]);
    out.append("==");
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kB64Digits[(n >> 18) & 0x3F]);
    out.push_back(kB64Digits[(n >> 12) & 0x3F]);
    out.push_back(kB64Digits[(n >> 6) & 0x3F]);
    out.push_back('=');
  }
  return out;
}

std::optional<Bytes> Base64Decode(std::string_view b64) {
  if (b64.size() % 4 != 0) return std::nullopt;
  Bytes out;
  out.reserve(b64.size() / 4 * 3);
  for (std::size_t i = 0; i < b64.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = b64[i + j];
      if (c == '=') {
        // Padding is only allowed in the final two positions of the last
        // quantum, and must be trailing.
        if (i + 4 != b64.size() || j < 2) return std::nullopt;
        vals[j] = 0;
        ++pad;
      } else {
        if (pad > 0) return std::nullopt;
        vals[j] = B64Value(c);
        if (vals[j] < 0) return std::nullopt;
      }
    }
    const std::uint32_t n =
        (static_cast<std::uint32_t>(vals[0]) << 18) |
        (static_cast<std::uint32_t>(vals[1]) << 12) |
        (static_cast<std::uint32_t>(vals[2]) << 6) |
        static_cast<std::uint32_t>(vals[3]);
    out.push_back(static_cast<std::uint8_t>(n >> 16));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>(n >> 8));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n));
  }
  return out;
}

}  // namespace rev::util
