// Deterministic pseudo-random number generation for the simulation.
//
// Every stochastic component takes an explicit Rng (or a seed) so whole-system
// runs are reproducible bit-for-bit. The generator is xoshiro256**, seeded
// via splitmix64 per the reference recommendation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace rev::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Bernoulli trial with success probability p.
  bool Chance(double p);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Normal via Box–Muller.
  double Normal(double mean, double stddev);

  // Log-normal: exp(Normal(mu, sigma)) — heavy-tailed sizes/durations.
  double LogNormal(double mu, double sigma);

  // Pareto with scale xm > 0 and shape alpha > 0.
  double Pareto(double xm, double alpha);

  // Poisson-distributed count with the given mean (uses inversion for small
  // means, normal approximation for large ones).
  std::uint64_t Poisson(double mean);

  // Zipf-like rank in [0, n): probability of rank r proportional to
  // 1/(r+1)^s. Uses rejection sampling.
  std::uint64_t Zipf(std::uint64_t n, double s);

  // Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Fills `out` with random bytes.
  void Fill(std::uint8_t* out, std::size_t n);

  // Derives an independent generator; `label` decorrelates streams that
  // share a parent seed.
  Rng Fork(std::uint64_t label);

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace rev::util
