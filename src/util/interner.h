// String interning: maps byte strings to dense, stable 32-bit ids.
//
// Backs the corpus columns for issuer/subject name DER and CRL/OCSP URLs:
// 5M rows reference a few thousand distinct names and URLs, so columns hold
// 4-byte ids instead of heap strings. Storage lives in a util::Arena, so the
// string_view returned by Get() stays valid for the interner's lifetime and
// ids are assigned densely in first-intern order and never change
// (property-tested in tests/property_test.cpp).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/arena.h"
#include "util/bytes.h"

namespace rev::util {

class StringInterner {
 public:
  static constexpr std::uint32_t kInvalidId = 0xFFFF'FFFFu;

  // Returns the id for `s`, interning a stable copy on first sight.
  std::uint32_t Intern(std::string_view s) {
    if (by_id_.size() * 4 >= slots_.size() * 3) Grow();
    const std::uint64_t hash = Hash(s);
    std::size_t i = static_cast<std::size_t>(hash) & mask_;
    while (slots_[i].id != kInvalidId) {
      if (slots_[i].hash == hash && by_id_[slots_[i].id] == s)
        return slots_[i].id;
      i = (i + 1) & mask_;
    }
    const auto id = static_cast<std::uint32_t>(by_id_.size());
    by_id_.push_back(arena_.CopyString(s));
    slots_[i] = Slot{hash, id};
    return id;
  }

  std::uint32_t Intern(BytesView b) { return Intern(AsStringView(b)); }

  // Id for `s` if already interned, else kInvalidId.
  std::uint32_t Find(std::string_view s) const {
    if (slots_.empty()) return kInvalidId;
    const std::uint64_t hash = Hash(s);
    std::size_t i = static_cast<std::size_t>(hash) & mask_;
    while (slots_[i].id != kInvalidId) {
      if (slots_[i].hash == hash && by_id_[slots_[i].id] == s)
        return slots_[i].id;
      i = (i + 1) & mask_;
    }
    return kInvalidId;
  }

  std::uint32_t Find(BytesView b) const { return Find(AsStringView(b)); }

  // The interned string for `id`; valid for the interner's lifetime.
  std::string_view Get(std::uint32_t id) const { return by_id_[id]; }

  BytesView GetBytes(std::uint32_t id) const {
    const std::string_view s = by_id_[id];
    return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
  }

  std::size_t size() const { return by_id_.size(); }
  std::size_t arena_bytes() const { return arena_.bytes_used(); }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t id = kInvalidId;
  };

  static std::string_view AsStringView(BytesView b) {
    return {reinterpret_cast<const char*>(b.data()), b.size()};
  }

  // FNV-1a 64.
  static std::uint64_t Hash(std::string_view s) {
    std::uint64_t h = 0xcbf2'9ce4'8422'2325ull;
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x0000'0100'0000'01B3ull;
    }
    return h;
  }

  void Grow() {
    const std::size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    for (const Slot& slot : old) {
      if (slot.id == kInvalidId) continue;
      std::size_t i = static_cast<std::size_t>(slot.hash) & mask_;
      while (slots_[i].id != kInvalidId) i = (i + 1) & mask_;
      slots_[i] = slot;
    }
  }

  Arena arena_{1u << 16};
  std::vector<std::string_view> by_id_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
};

}  // namespace rev::util
