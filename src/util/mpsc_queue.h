// A bounded lock-free multi-producer queue with batched single-consumer
// drain, the handoff structure under the serving frontend's per-shard run
// loops (docs/serving.md). Producers enqueue with one CAS on the tail
// ticket; the consumer claims a contiguous run of published cells in one
// PopBatch call — the "drain a batch per iteration" primitive that lets the
// serve path amortize snapshot and cache-lock acquisition across requests.
//
// The cell/sequence protocol is Vyukov's bounded MPMC ring: each cell
// carries a sequence number that encodes whether it is free for the
// producer of ticket `pos` (seq == pos), published for the consumer
// (seq == pos + 1), or still owned by a lagging party. All handoff is
// acquire/release on the cell sequence, so the structure is clean under
// ThreadSanitizer with no fences beyond the atomics themselves.
//
// Single-consumer discipline is the caller's contract (the frontend
// enforces it with a per-shard drain lock); producers may be any number of
// threads. TryPush never blocks: a full ring returns false, which the serve
// layer maps to load shedding.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace rev::util {

template <typename T>
class MpscQueue {
 public:
  // Capacity is rounded up to the next power of two (minimum 2) so slot
  // selection is a mask, not a division.
  explicit MpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Multi-producer enqueue. Returns false when the ring is full (the
  // admission layer above sheds instead of blocking).
  bool TryPush(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        // The cell is free for ticket `pos`: claim it with one CAS.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // a full lap behind: the ring is full
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost the race
      }
    }
  }

  // Single-consumer batched drain: moves up to `max` published values into
  // `out`, in enqueue order, without ever waiting for a slow producer (an
  // unpublished cell ends the batch). Returns the number drained. Must not
  // be called concurrently with itself.
  std::size_t PopBatch(T* out, std::size_t max) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    std::size_t n = 0;
    while (n < max) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<std::intptr_t>(seq) !=
          static_cast<std::intptr_t>(pos + 1))
        break;  // not yet published: the batch ends here
      out[n++] = std::move(cell.value);
      // Recycle the cell for the producer one lap ahead.
      cell.seq.store(pos + mask_ + 1, std::memory_order_release);
      ++pos;
    }
    head_.store(pos, std::memory_order_relaxed);
    return n;
  }

  std::size_t capacity() const { return mask_ + 1; }

  // Approximate occupancy (exact once producers and the consumer quiesce).
  std::size_t SizeApprox() const {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  // producers' ticket
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
};

}  // namespace rev::util
