// Precomputed-response cache: maps a StatusKey to a batch-signed DER OCSP
// response so the serving hot path is a hash lookup plus a shared_ptr copy
// instead of a per-request signature (production responders pre-generate
// responses the same way; the paper's §6.2 bandwidth argument assumes it).
//
// Entries expire at `serve_until` — the response's nextUpdate, tightened to
// any scheduled revocation time so a pre-signed "good" is never served past
// the moment the revocation takes effect.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "serve/status_index.h"
#include "util/bytes.h"
#include "util/time.h"

namespace rev::serve {

class ResponseCache {
 public:
  struct Entry {
    std::shared_ptr<const Bytes> der;  // full signed OCSPResponse
    util::Timestamp signed_at = 0;
    util::Timestamp serve_until = 0;  // exclusive: stale once now >= this
  };

  enum class Outcome { kHit, kMiss, kExpired };

  struct LookupResult {
    Outcome outcome = Outcome::kMiss;
    std::shared_ptr<const Bytes> der;  // set iff kHit
  };

  explicit ResponseCache(std::size_t num_shards = 16);

  LookupResult Get(const StatusKey& key, util::Timestamp now) const;

  void Put(const StatusKey& key, Entry entry);
  void PutBatch(std::vector<std::pair<StatusKey, Entry>> entries);

  void Invalidate(const StatusKey& key);
  void InvalidateBatch(const std::vector<StatusKey>& keys);
  void Clear();

  // Keys whose entry goes stale at or before `deadline` — the refresh
  // candidates. Sorted for deterministic batch re-signing.
  std::vector<StatusKey> KeysStaleBy(util::Timestamp deadline) const;

  std::size_t size() const;

  // Registry tallies ("serve.response_cache.*{cache=N}"). Strictly
  // monotonic: lookups only ever add, and Clear()/Invalidate()/batch
  // re-signs never reset them — a reader sampling across a RefreshStale or
  // an epoch swap sees the totals move forward only.
  std::uint64_t hits() const { return hits_.Value(); }
  std::uint64_t misses() const { return misses_.Value(); }
  std::uint64_t expired() const { return expired_.Value(); }

 private:
  using Map = std::unordered_map<StatusKey, Entry, StatusKeyHash>;

  struct Shard {
    mutable std::shared_mutex mu;
    Map map;
  };

  std::size_t ShardOf(const StatusKey& key) const {
    return StatusKeyHash{}(key) % shards_.size();
  }

  ResponseCache(std::size_t num_shards, std::uint64_t instance);

  std::vector<Shard> shards_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& expired_;
};

}  // namespace rev::serve
