// Precomputed-response cache: maps a StatusKey to a batch-signed DER OCSP
// response so the serving hot path is a hash lookup plus a shared_ptr copy
// instead of a per-request signature (production responders pre-generate
// responses the same way; the paper's §6.2 bandwidth argument assumes it).
//
// Entries expire at `serve_until` — the response's nextUpdate, tightened to
// any scheduled revocation time so a pre-signed "good" is never served past
// the moment the revocation takes effect.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "serve/status_index.h"
#include "util/bytes.h"
#include "util/time.h"

namespace rev::serve {

class ResponseCache {
 public:
  struct Entry {
    std::shared_ptr<const Bytes> der;  // full signed OCSPResponse
    util::Timestamp signed_at = 0;
    util::Timestamp serve_until = 0;  // exclusive: stale once now >= this
  };

  enum class Outcome { kHit, kMiss, kExpired };

  struct LookupResult {
    Outcome outcome = Outcome::kMiss;
    std::shared_ptr<const Bytes> der;  // set iff kHit
  };

  explicit ResponseCache(std::size_t num_shards = 16);

  // Expiry boundary (audited for ISSUE 6): `serve_until` is exclusive.
  // A query at exactly `serve_until` — e.g. a revocation scheduled at t,
  // queried at t — must observe kExpired, never a hit; both Get and
  // PeekBatch callers compare with `now >= serve_until`, and KeysStaleBy
  // uses `serve_until <= deadline` so an entry is a refresh candidate at
  // the first instant it can no longer be served.
  LookupResult Get(const StatusKey& key, util::Timestamp now) const;

  // Batched raw lookup for the serve run loop: copies the entry (or leaves
  // a null-der Entry) for every key under ONE shared-lock acquisition.
  // Keys are borrowed views (heterogeneous find — no heap key per lookup).
  // Precondition: all keys map to the same shard — the run loop drains one
  // shard's queue per iteration and the cache shares the index's shard
  // function, so this holds by construction. No expiry classification and
  // no tallying happen here: the caller evaluates `serve_until` against
  // each request's own `now` and reports the per-request outcomes back
  // through CountOutcome so the monotonic tallies stay exact.
  void PeekBatch(const std::vector<BytesView>& keys,
                 std::vector<Entry>* out) const;

  // Tallies outcomes classified outside Get (the batched path). Keeps
  // hits()/misses()/expired() strictly monotonic and consistent with the
  // per-request path: a batch-coalesced request — served from the entry
  // the same batch just signed — counts as a hit, exactly as it would had
  // the requests arrived one at a time.
  void CountOutcome(Outcome outcome, std::uint64_t n = 1);

  void Put(const StatusKey& key, Entry entry);
  void PutBatch(std::vector<std::pair<StatusKey, Entry>> entries);

  void Invalidate(const StatusKey& key);
  void InvalidateBatch(const std::vector<StatusKey>& keys);
  void Clear();

  // Keys whose entry goes stale at or before `deadline` — the refresh
  // candidates. Sorted for deterministic batch re-signing.
  std::vector<StatusKey> KeysStaleBy(util::Timestamp deadline) const;

  // Full-state export for the replication channel (src/fleet): every
  // cached entry still servable at `now` (expired entries are dead weight
  // on the wire), sorted by key for a deterministic blob. Entry `der`
  // pointers are shared, not copied.
  std::vector<std::pair<StatusKey, Entry>> ExportEntries(
      util::Timestamp now) const;

  std::size_t size() const;

  // Registry tallies ("serve.response_cache.*{cache=N}"). Strictly
  // monotonic: lookups only ever add, and Clear()/Invalidate()/batch
  // re-signs never reset them — a reader sampling across a RefreshStale or
  // an epoch swap sees the totals move forward only.
  std::uint64_t hits() const { return hits_.Value(); }
  std::uint64_t misses() const { return misses_.Value(); }
  std::uint64_t expired() const { return expired_.Value(); }

 private:
  using Map = std::unordered_map<StatusKey, Entry, StatusKeyHash, StatusKeyEq>;

  struct Shard {
    mutable std::shared_mutex mu;
    Map map;
  };

  std::size_t ShardOf(BytesView key) const {
    return StatusKeyHash{}(key) % shards_.size();
  }

  ResponseCache(std::size_t num_shards, std::uint64_t instance);

  std::vector<Shard> shards_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& expired_;
};

}  // namespace rev::serve
