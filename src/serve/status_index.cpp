#include "serve/status_index.h"

#include <algorithm>

namespace rev::serve {

StatusKey MakeStatusKey(BytesView issuer_key_hash, BytesView serial_be) {
  StatusKey key;
  key.reserve(issuer_key_hash.size() + serial_be.size());
  Append(key, issuer_key_hash);
  Append(key, serial_be);
  return key;
}

x509::Serial SerialOfKey(BytesView key) {
  return x509::Serial(key.begin() + 32, key.end());
}

BytesView IssuerHashOfKey(BytesView key) {
  return key.subspan(0, 32);
}

StatusIndex::StatusIndex(std::size_t num_shards)
    : shards_(num_shards == 0 ? 1 : num_shards) {}

StatusIndex::Snapshot StatusIndex::SnapshotOf(std::size_t shard) const {
  std::shared_lock lock(shards_[shard].mu);
  return shards_[shard].snap;
}

void StatusIndex::Apply(const std::vector<Update>& updates) {
  if (updates.empty()) return;
  std::lock_guard writer(writer_mu_);

  // Bucket the batch by shard so each affected shard is copied exactly once.
  std::vector<std::vector<const Update*>> by_shard(shards_.size());
  for (const Update& update : updates)
    by_shard[ShardOf(update.key)].push_back(&update);

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    // Build the replacement off to the side; readers keep the old snapshot.
    auto next = std::make_shared<Map>(*SnapshotOf(s));
    for (const Update* update : by_shard[s]) {
      if (update->record)
        (*next)[update->key] = *update->record;
      else
        next->erase(update->key);
    }
    std::unique_lock lock(shards_[s].mu);
    shards_[s].snap = std::move(next);
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

StatusIndex::ShardView StatusIndex::ViewOf(std::size_t shard) const {
  return ShardView(SnapshotOf(shard));
}

std::optional<StatusIndex::Record> StatusIndex::Lookup(BytesView key) const {
  const Snapshot snap = SnapshotOf(ShardOf(key));
  auto it = snap->find(key);
  if (it == snap->end()) return std::nullopt;
  return it->second;
}

std::vector<StatusKey> StatusIndex::SortedKeys() const {
  std::vector<StatusKey> keys;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Snapshot snap = SnapshotOf(s);
    for (const auto& [key, record] : *snap) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::pair<StatusKey, StatusIndex::Record>>
StatusIndex::ExportRecords() const {
  std::vector<std::pair<StatusKey, Record>> records;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Snapshot snap = SnapshotOf(s);
    for (const auto& [key, record] : *snap) records.emplace_back(key, record);
  }
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return records;
}

std::size_t StatusIndex::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) total += SnapshotOf(s)->size();
  return total;
}

}  // namespace rev::serve
