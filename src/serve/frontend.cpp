#include "serve/frontend.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/trace.h"

namespace rev::serve {

namespace {

// Span-id salt for server-side request spans (child of the exchange span
// carried by the traceparent header).
constexpr std::uint64_t kServeSalt = 0x5E44E1F7ull;

// Records the frontend-side server span for a traced request/batch. The
// simulated handler is instantaneous on the virtual clock (the cost model
// charges the exchange, not the handler), so the span is zero-duration:
// a causality marker carrying node + status, never a critical-path tile.
void RecordServerSpan(const obs::SpanContext& ctx, const char* name,
                      const char* node, int http_status, util::Timestamp now) {
  obs::DistSpan span;
  span.trace = ctx.trace;
  span.span = obs::DeriveSpanId(ctx, kServeSalt);
  span.parent = ctx.span;
  span.name = name;
  span.node = node;
  span.kind = obs::SpanKind::kServer;
  span.status = http_status;
  span.start_ns = obs::VirtualNs(now, 0);
  span.end_ns = span.start_ns;
  obs::DistTraceCollector::Global().Record(span);
}

}  // namespace

// Registry instruments, one set per frontend instance (label "frontend=N")
// so counters() stays exact when several frontends coexist. References are
// resolved once at construction; the hot path touches only lock-free
// sharded atomics.
struct Frontend::Instruments {
  explicit Instruments(const std::string& label)
      : requests(Get("serve.requests", label)),
        cache_hits(Get("serve.cache_hits", label)),
        cache_misses(Get("serve.cache_misses", label)),
        cache_expired(Get("serve.cache_expired", label)),
        signed_on_demand(Get("serve.signed_on_demand", label)),
        batch_signed(Get("serve.batch_signed", label)),
        refreshed(Get("serve.refreshed", label)),
        shed(Get("serve.shed", label)),
        malformed(Get("serve.malformed", label)),
        unauthorized(Get("serve.unauthorized", label)),
        staples(Get("serve.staples", label)),
        status_updates(Get("serve.status_updates", label)),
        latency_ns(obs::MetricsRegistry::Global().GetHistogram(
            "serve.latency_ns{" + label + "}")),
        batch_size(obs::MetricsRegistry::Global().GetHistogram(
            "serve.batch_size{" + label + "}")) {}

  static obs::Counter& Get(const char* name, const std::string& label) {
    return obs::MetricsRegistry::Global().GetCounter(std::string(name) + "{" +
                                                     label + "}");
  }

  obs::Counter& requests;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& cache_expired;
  obs::Counter& signed_on_demand;
  obs::Counter& batch_signed;
  obs::Counter& refreshed;
  obs::Counter& shed;
  obs::Counter& malformed;
  obs::Counter& unauthorized;
  obs::Counter& staples;
  obs::Counter& status_updates;
  obs::Histogram& latency_ns;
  obs::Histogram& batch_size;
};

// Completion slot carried by every queued op. The notify happens while the
// mutex is held: a waiter that has observed remaining_ == 0 can destroy
// the gate (it lives on the caller's stack) only after Done() has released
// the lock, so the combiner never touches a dead gate.
class Frontend::CompletionGate {
 public:
  void Arm(std::size_t n) {
    std::lock_guard lock(mu_);
    remaining_ += n;
  }

  void Done(std::size_t n) {
    std::lock_guard lock(mu_);
    remaining_ -= n;
    if (remaining_ == 0) cv_.notify_all();
  }

  bool IsDone() {
    std::lock_guard lock(mu_);
    return remaining_ == 0;
  }

  // True once all armed ops completed; false on timeout. The timeout is a
  // liveness backstop for the push-after-drain window (an op published
  // just as the previous combiner released the drain lock): the waiter
  // wakes, wins the lock, and drains its own op.
  bool WaitFor(std::chrono::microseconds timeout) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t remaining_ = 0;
};

// One queued unit of work. Ops live on the submitting caller's stack (or
// in ServeBatch's op array); the queue carries pointers, and the gate
// handshake guarantees the combiner is finished with an op before the
// caller's frame unwinds.
struct Frontend::Op {
  const ocsp::OcspRequest* request = nullptr;
  const ocsp::Responder* responder = nullptr;
  // Status key storage: inline when it fits (the common case — 32-byte
  // issuer hash plus a short serial), so the hot path never heap-allocates
  // a key. Consumers read it through key(), a borrowed view either way.
  std::array<std::uint8_t, 64> key_inline;
  std::uint8_t key_len = 0;  // 0 = key lives in key_heap
  StatusKey key_heap;
  util::Timestamp now = 0;
  std::size_t shard = 0;
  bool cacheable = false;  // single-cert, no nonce: precomputed-response path
  ServeResult result;
  CompletionGate* gate = nullptr;

  BytesView key() const {
    return key_len != 0 ? BytesView(key_inline.data(), key_len)
                        : BytesView(key_heap);
  }
  void SetKey(BytesView issuer_key_hash, BytesView serial) {
    const std::size_t len = issuer_key_hash.size() + serial.size();
    if (len <= key_inline.size()) {
      std::memcpy(key_inline.data(), issuer_key_hash.data(),
                  issuer_key_hash.size());
      std::memcpy(key_inline.data() + issuer_key_hash.size(), serial.data(),
                  serial.size());
      key_len = static_cast<std::uint8_t>(len);
    } else {
      key_heap = MakeStatusKey(issuer_key_hash, serial);
      key_len = 0;
    }
  }
};

struct Frontend::ShardState {
  explicit ShardState(std::size_t capacity) : queue(capacity) {}

  util::MpscQueue<Op*> queue;
  // Combiner lock: whoever try-locks it drains the queue. Never held while
  // blocking on anything, so contention resolves in bounded time.
  std::mutex drain_mu;
  // Admission watermark: ops admitted and not yet completed. Bounded by
  // per_shard_queue, which also bounds ring occupancy (a cell is freed at
  // PopBatch, before the op completes).
  std::atomic<std::size_t> depth{0};
  obs::Gauge* depth_gauge = nullptr;  // written only under drain_mu
};

Frontend::Frontend(FrontendOptions options)
    : options_(options),
      index_(options.num_shards),
      cache_(options.num_shards),
      metrics_label_("frontend=" + std::to_string(obs::NextInstanceId())),
      metrics_(std::make_unique<Instruments>(metrics_label_)) {
  shard_states_.reserve(index_.num_shards());
  for (std::size_t s = 0; s < index_.num_shards(); ++s) {
    auto state = std::make_unique<ShardState>(options_.per_shard_queue);
    state->depth_gauge = &obs::MetricsRegistry::Global().GetGauge(
        "serve.queue_depth{" + metrics_label_ + ",shard=" + std::to_string(s) +
        "}");
    shard_states_.push_back(std::move(state));
  }
  try_later_der_ = std::make_shared<const Bytes>(
      ocsp::MakeErrorResponse(ocsp::ResponseStatus::kTryLater).der);
  malformed_der_ = std::make_shared<const Bytes>(
      ocsp::MakeErrorResponse(ocsp::ResponseStatus::kMalformedRequest).der);
  unauthorized_der_ = std::make_shared<const Bytes>(
      ocsp::MakeErrorResponse(ocsp::ResponseStatus::kUnauthorized).der);
}

Frontend::~Frontend() {
  for (auto& [hash, responder] : responders_) responder->SetObserver({});
}

void Frontend::StartServing() {
  if (serving_started_.load(std::memory_order_acquire)) return;
  // First request: take the attach lock once so a still-running
  // AttachResponder finishes (or the latch forces it to throw) before any
  // thread reads the routing table. Every later request exits on the
  // acquire load above.
  std::lock_guard lock(attach_mu_);
  serving_started_.store(true, std::memory_order_release);
}

void Frontend::AttachResponder(ocsp::Responder* responder) {
  std::lock_guard attach(attach_mu_);
  if (serving_started_.load(std::memory_order_acquire)) {
    // The routing table is read lock-free on the hot path; mutating it
    // after the first request would be a data race. Fail loudly instead of
    // corrupting the readers.
    throw std::logic_error(
        "Frontend::AttachResponder: serving already started; attach every "
        "responder before the first request");
  }
  responders_[responder->issuer_key_hash()] = responder;
  responder->SetObserver(
      [this, responder](const x509::Serial& serial,
                        const std::optional<ocsp::Responder::RecordView>& record) {
        OnMutation(*responder, serial, record);
      });
  // Bulk-load the existing records through the same pending path so the
  // first request (or an explicit Flush) applies them as one batch.
  std::lock_guard lock(pending_mu_);
  for (auto& [serial, record] : responder->SnapshotRecords()) {
    pending_.push_back(
        {MakeStatusKey(responder->issuer_key_hash(), serial), record});
  }
  has_pending_.store(!pending_.empty(), std::memory_order_release);
}

void Frontend::AddRoute(std::string path_prefix, net::HttpHandler handler) {
  std::lock_guard attach(attach_mu_);
  if (serving_started_.load(std::memory_order_acquire)) {
    // routes_ is scanned lock-free by HandleHttp once serving starts —
    // same discipline as the responder routing table. Name the offending
    // route: with several subsystems registering routes (cascade publisher,
    // fleet replication) the path is what identifies the late caller.
    throw std::logic_error(
        "Frontend::AddRoute(\"" + path_prefix +
        "\"): serving already started; register every route before the "
        "first request");
  }
  routes_.emplace_back(std::move(path_prefix), std::move(handler));
}

const ocsp::Responder* Frontend::FindResponder(
    BytesView issuer_key_hash) const {
  const auto it = responders_.find(issuer_key_hash);
  return it == responders_.end() ? nullptr : it->second;
}

void Frontend::OnMutation(
    const ocsp::Responder& responder, const x509::Serial& serial,
    const std::optional<ocsp::Responder::RecordView>& record) {
  std::lock_guard lock(pending_mu_);
  pending_.push_back(
      {MakeStatusKey(responder.issuer_key_hash(), serial), record});
  has_pending_.store(true, std::memory_order_release);
}

void Frontend::MaybeFlush() {
  if (has_pending_.load(std::memory_order_acquire)) Flush();
}

void Frontend::Flush() {
  std::vector<StatusIndex::Update> batch;
  {
    std::lock_guard lock(pending_mu_);
    batch.swap(pending_);
    has_pending_.store(false, std::memory_order_release);
  }
  if (batch.empty()) return;
  index_.Apply(batch);
  // Any precomputed response for a touched key is now suspect.
  for (const StatusIndex::Update& update : batch) cache_.Invalidate(update.key);
  metrics_->status_updates.Add(batch.size());
}

std::size_t Frontend::ImportStatusRecords(
    const std::vector<std::pair<StatusKey, StatusIndex::Record>>& records) {
  // Apply anything pending first so the diff runs against current state
  // (on a replica the importer is the only writer, so this is exact).
  Flush();
  const std::vector<std::pair<StatusKey, StatusIndex::Record>> local =
      index_.ExportRecords();

  // Both sides are sorted by key: one merge pass yields exactly the delta.
  std::vector<StatusIndex::Update> updates;
  std::size_t i = 0, j = 0;
  while (i < records.size() || j < local.size()) {
    if (j == local.size() ||
        (i < records.size() && records[i].first < local[j].first)) {
      updates.push_back({records[i].first, records[i].second});  // new key
      ++i;
    } else if (i == records.size() || local[j].first < records[i].first) {
      updates.push_back({local[j].first, std::nullopt});  // dropped key
      ++j;
    } else {
      if (!(records[i].second == local[j].second))
        updates.push_back({records[i].first, records[i].second});  // changed
      ++i;
      ++j;
    }
  }
  if (updates.empty()) return 0;

  const std::size_t changed = updates.size();
  {
    std::lock_guard lock(pending_mu_);
    for (StatusIndex::Update& update : updates)
      pending_.push_back(std::move(update));
    has_pending_.store(true, std::memory_order_release);
  }
  // Flush now: replication lag accounting wants the epoch visible the
  // moment the push is acknowledged, and Flush invalidates the cache
  // entries the diff touched.
  Flush();
  return changed;
}

std::size_t Frontend::ImportResponseEntries(
    std::vector<std::pair<StatusKey, ResponseCache::Entry>> entries) {
  const std::size_t count = entries.size();
  if (count != 0) cache_.PutBatch(std::move(entries));
  return count;
}

ResponseCache::Entry Frontend::SignFromRecord(
    const ocsp::Responder& responder, BytesView key,
    const std::optional<StatusIndex::Record>& record, util::Timestamp now) {
  const x509::Serial serial = SerialOfKey(key);
  const ocsp::SingleResponse single = responder.MakeSingle(serial, record, now);
  ocsp::OcspResponse response = responder.Sign({single}, now);

  ResponseCache::Entry entry;
  entry.der = std::make_shared<const Bytes>(std::move(response.der));
  entry.signed_at = now;
  entry.serve_until = single.next_update;
  // A pre-signed "good" must not outlive a scheduled revocation: clamp the
  // serving window to the moment the status changes.
  if (record && record->status == ocsp::CertStatus::kRevoked &&
      record->revocation_time > now) {
    entry.serve_until = std::min(entry.serve_until, record->revocation_time);
  }
  return entry;
}

ResponseCache::Entry Frontend::SignEntry(const ocsp::Responder& responder,
                                         BytesView key, util::Timestamp now) {
  return SignFromRecord(responder, key, index_.Lookup(key), now);
}

std::size_t Frontend::ShardOf(BytesView issuer_key_hash,
                              const x509::Serial& serial) const {
  return index_.ShardOf(MakeStatusKey(issuer_key_hash, serial));
}

bool Frontend::TryEnterShard(std::size_t shard) {
  auto& depth = shard_states_[shard]->depth;
  if (depth.fetch_add(1, std::memory_order_acq_rel) >=
      options_.per_shard_queue) {
    depth.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

void Frontend::ExitShard(std::size_t shard) {
  shard_states_[shard]->depth.fetch_sub(1, std::memory_order_acq_rel);
}

Frontend::ServeResult Frontend::Serve(BytesView request_der,
                                      util::Timestamp now,
                                      const obs::SpanContext* ctx) {
  metrics_->requests.Increment();
  // Zero-allocation fast path for the dominant shape (single cert, no
  // nonce): route and build the status key straight off views into the
  // request buffer. Anything else — including malformed input — falls back
  // to the allocating parser for classification.
  ocsp::OcspRequestView view;
  if (ocsp::ParseSingleCertRequestView(request_der, &view)) {
    obs::Span span("serve.request");
    const auto start = options_.record_latency
                           ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
    StartServing();
    const ocsp::Responder* responder = FindResponder(view.issuer_key_hash);
    if (responder == nullptr ||
        !std::ranges::equal(view.issuer_name_hash,
                            responder->issuer_name_hash())) {
      metrics_->unauthorized.Increment();
      return {200, unauthorized_der_, 0, false};
    }
    return EnqueueOne(nullptr, responder, view.serial, true, now, start, ctx);
  }
  auto request = ocsp::ParseOcspRequest(request_der);
  if (!request) {
    metrics_->malformed.Increment();
    return {200, malformed_der_, 0, false};
  }
  return ServeParsed(*request, now, ctx);
}

Frontend::ServeResult Frontend::ServeGetPath(std::string_view path,
                                             util::Timestamp now,
                                             const obs::SpanContext* ctx) {
  metrics_->requests.Increment();
  auto request = ocsp::ParseOcspGetPath(path);
  if (!request) {
    metrics_->malformed.Increment();
    return {200, malformed_der_, 0, false};
  }
  return ServeParsed(*request, now, ctx);
}

Frontend::ServeResult Frontend::ServeParsed(const ocsp::OcspRequest& request,
                                            util::Timestamp now,
                                            const obs::SpanContext* ctx) {
  obs::Span span("serve.request");
  const auto start = options_.record_latency
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  StartServing();

  const ocsp::Responder* responder =
      FindResponder(request.cert_ids.front().issuer_key_hash);
  if (responder == nullptr) {
    metrics_->unauthorized.Increment();
    return {200, unauthorized_der_, 0, false};
  }
  for (const ocsp::CertId& id : request.cert_ids) {
    if (id.issuer_name_hash != responder->issuer_name_hash() ||
        id.issuer_key_hash != responder->issuer_key_hash()) {
      metrics_->unauthorized.Increment();
      return {200, unauthorized_der_, 0, false};
    }
  }

  return EnqueueOne(&request, responder, request.cert_ids.front().serial,
                    request.cert_ids.size() == 1 && request.nonce.empty(), now,
                    start, ctx);
}

Frontend::ServeResult Frontend::EnqueueOne(
    const ocsp::OcspRequest* request, const ocsp::Responder* responder,
    BytesView serial, bool cacheable, util::Timestamp now,
    std::chrono::steady_clock::time_point start, const obs::SpanContext* ctx) {
  const bool traced =
      ctx != nullptr && obs::DistTraceCollector::Global().enabled();
  Op op;
  op.SetKey(responder->issuer_key_hash(), serial);
  const std::size_t shard = index_.ShardOf(op.key());
  if (!TryEnterShard(shard)) {
    metrics_->shed.Increment();
    if (traced)
      RecordServerSpan(*ctx, "serve.request", obs::InternName(metrics_label_),
                       503, now);
    return {503, try_later_der_, options_.retry_after_seconds, false};
  }

  CompletionGate gate;
  gate.Arm(1);
  op.request = request;
  op.responder = responder;
  op.now = now;
  op.shard = shard;
  op.cacheable = cacheable;
  op.gate = &gate;
  if (!shard_states_[shard]->queue.TryPush(&op)) {
    // Unreachable while the admission watermark and ring capacity agree;
    // shed defensively rather than block on a full ring.
    ExitShard(shard);
    metrics_->shed.Increment();
    return {503, try_later_der_, options_.retry_after_seconds, false};
  }
  RunUntil(gate, &shard, 1);

  if (options_.record_latency) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (traced) {
      // The trace id becomes the bucket's exemplar: "the p99 bucket" now
      // names a reconstructable slow request.
      metrics_->latency_ns.RecordSecondsWithExemplar(
          seconds, {ctx->trace.hi, ctx->trace.lo});
    } else {
      metrics_->latency_ns.RecordSeconds(seconds);
    }
  }
  if (traced)
    RecordServerSpan(*ctx, "serve.request", obs::InternName(metrics_label_),
                     op.result.http_status, now);
  return std::move(op.result);
}

std::vector<Frontend::ServeResult> Frontend::ServeBatch(
    const std::vector<BytesView>& requests, util::Timestamp now,
    const obs::SpanContext* ctx) {
  obs::Span span("serve.batch");
  const auto start = options_.record_latency
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  const std::size_t n = requests.size();
  std::vector<ServeResult> results(n);
  if (n == 0) return results;
  metrics_->requests.Add(n);
  StartServing();

  // Ops and parsed requests need stable addresses until their gate fires:
  // both vectors are sized once and never reallocate.
  std::vector<std::optional<ocsp::OcspRequest>> parsed(n);
  std::vector<Op> ops(n);
  CompletionGate gate;

  std::size_t accepted = 0;
  // One-entry route memo: real traffic is dominated by runs of requests
  // for the same CA, so a 32-byte compare usually replaces the hash-map
  // probe.
  const ocsp::Responder* last_responder = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    Op& op = ops[i];
    const ocsp::Responder* responder = nullptr;
    const ocsp::OcspRequest* request = nullptr;
    bool cacheable = false;
    // Same zero-allocation fast path as Serve(); anything the view parser
    // rejects goes through the allocating parser for classification.
    ocsp::OcspRequestView view;
    if (ocsp::ParseSingleCertRequestView(requests[i], &view)) {
      responder = last_responder != nullptr &&
                          std::ranges::equal(view.issuer_key_hash,
                                             last_responder->issuer_key_hash())
                      ? last_responder
                      : FindResponder(view.issuer_key_hash);
      if (responder == nullptr ||
          !std::ranges::equal(view.issuer_name_hash,
                              responder->issuer_name_hash())) {
        metrics_->unauthorized.Increment();
        results[i] = {200, unauthorized_der_, 0, false};
        continue;
      }
      last_responder = responder;
      op.SetKey(view.issuer_key_hash, view.serial);
      cacheable = true;
    } else {
      parsed[i] = ocsp::ParseOcspRequest(requests[i]);
      if (!parsed[i]) {
        metrics_->malformed.Increment();
        results[i] = {200, malformed_der_, 0, false};
        continue;
      }
      request = &*parsed[i];
      responder = FindResponder(request->cert_ids.front().issuer_key_hash);
      bool authorized = responder != nullptr;
      if (authorized) {
        for (const ocsp::CertId& id : request->cert_ids) {
          if (id.issuer_name_hash != responder->issuer_name_hash() ||
              id.issuer_key_hash != responder->issuer_key_hash()) {
            authorized = false;
            break;
          }
        }
      }
      if (!authorized) {
        metrics_->unauthorized.Increment();
        results[i] = {200, unauthorized_der_, 0, false};
        continue;
      }
      op.SetKey(responder->issuer_key_hash(),
                request->cert_ids.front().serial);
      cacheable =
          request->cert_ids.size() == 1 && request->nonce.empty();
    }
    const std::size_t shard = index_.ShardOf(op.key());
    if (!TryEnterShard(shard)) {
      metrics_->shed.Increment();
      results[i] = {503, try_later_der_, options_.retry_after_seconds, false};
      continue;
    }
    op.request = request;
    op.responder = responder;
    op.now = now;
    op.shard = shard;
    op.cacheable = cacheable;
    op.gate = &gate;
    ++accepted;
  }
  if (accepted == 0) return results;

  // Arm for the whole batch BEFORE the first push: a combiner completing
  // early ops must not see the gate hit zero while pushes are in flight.
  gate.Arm(accepted);
  std::vector<std::size_t> touched;
  for (std::size_t i = 0; i < n; ++i) {
    Op& op = ops[i];
    if (op.gate == nullptr) continue;
    if (!shard_states_[op.shard]->queue.TryPush(&op)) {
      ExitShard(op.shard);
      gate.Done(1);
      metrics_->shed.Increment();
      results[i] = {503, try_later_der_, options_.retry_after_seconds, false};
      op.gate = nullptr;
      continue;
    }
    if (std::find(touched.begin(), touched.end(), op.shard) == touched.end())
      touched.push_back(op.shard);
  }
  RunUntil(gate, touched.data(), touched.size());

  for (std::size_t i = 0; i < n; ++i)
    if (ops[i].gate != nullptr) results[i] = std::move(ops[i].result);

  const bool traced =
      ctx != nullptr && obs::DistTraceCollector::Global().enabled();
  if (options_.record_latency) {
    // Amortized per-request latency: the batch's wall time spread over the
    // ops it completed — the quantity the batch path optimizes.
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double per = elapsed / static_cast<double>(accepted);
    if (traced) {
      // One sample carries the batch's trace id as an exemplar; the rest
      // go through the batched path as before.
      if (accepted > 1) metrics_->latency_ns.RecordSecondsMany(per, accepted - 1);
      metrics_->latency_ns.RecordSecondsWithExemplar(
          per, {ctx->trace.hi, ctx->trace.lo});
    } else {
      metrics_->latency_ns.RecordSecondsMany(per, accepted);
    }
  }
  if (traced)
    RecordServerSpan(*ctx, "serve.batch", obs::InternName(metrics_label_), 200,
                     now);
  return results;
}

void Frontend::RunUntil(CompletionGate& gate, const std::size_t* touched,
                        std::size_t count) {
  for (;;) {
    if (gate.IsDone()) return;
    for (std::size_t i = 0; i < count; ++i) {
      ShardState& state = *shard_states_[touched[i]];
      if (state.drain_mu.try_lock()) {
        DrainShard(touched[i]);
        state.drain_mu.unlock();
      }
    }
    if (gate.WaitFor(std::chrono::microseconds(100))) return;
  }
}

void Frontend::DrainShard(std::size_t shard) {
  ShardState& state = *shard_states_[shard];
  constexpr std::size_t kMaxDrain = 256;
  Op* ops[kMaxDrain];
  const std::size_t cap =
      std::clamp<std::size_t>(options_.max_batch, 1, kMaxDrain);
  for (;;) {
    const std::size_t popped = state.queue.PopBatch(ops, cap);
    if (popped == 0) return;
    ProcessBatch(shard, ops, popped);
  }
}

void Frontend::ExecuteDirect(Op& op) {
  // Multi-cert or nonced requests are signed per request (a nonce makes
  // the response unique by construction; RFC 6960 notes pre-produced
  // responses cannot carry one). Ids may hash anywhere, so these resolve
  // through the global index, not the batch's shard view.
  const ocsp::OcspRequest& request = *op.request;
  std::vector<ocsp::SingleResponse> singles;
  singles.reserve(request.cert_ids.size());
  for (const ocsp::CertId& id : request.cert_ids) {
    const StatusKey id_key =
        MakeStatusKey(op.responder->issuer_key_hash(), id.serial);
    singles.push_back(
        op.responder->MakeSingle(id.serial, index_.Lookup(id_key), op.now));
  }
  ocsp::OcspResponse response =
      op.responder->Sign(singles, op.now, request.nonce);
  op.result = {200, std::make_shared<const Bytes>(std::move(response.der)), 0,
               false};
}

void Frontend::ProcessBatch(std::size_t shard, Op** ops, std::size_t count) {
  metrics_->batch_size.Record(count);
  // The whole batch shares one pending-mutation flush, one index snapshot
  // and one cache lock — the amortization this architecture exists for.
  MaybeFlush();
  const std::uint64_t epoch0 = index_.epoch();
  const StatusIndex::ShardView view = index_.ViewOf(shard);

  std::vector<BytesView> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    if (ops[i]->cacheable) keys.push_back(ops[i]->key());
  std::vector<ResponseCache::Entry> peeked;
  cache_.PeekBatch(keys, &peeked);

  // Entries signed by THIS batch. A later op for the same key is served
  // from here and counted as a cache hit — exactly what the serial path
  // reports when the first miss Puts and the rest hit, which keeps the
  // counter totals identical between ServeBatch and per-request Serve.
  // Only known serials enter (caching `unknown` would let arbitrary query
  // strings grow the cache without bound).
  std::unordered_map<StatusKey, ResponseCache::Entry, StatusKeyHash,
                     StatusKeyEq>
      fresh;

  std::uint64_t hits = 0, misses = 0, expired = 0, signed_count = 0;
  std::size_t peek_index = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Op& op = *ops[i];
    if (!op.cacheable) {
      ExecuteDirect(op);
      ++signed_count;
      continue;
    }
    const BytesView key = op.key();
    const ResponseCache::Entry* cached = &peeked[peek_index++];
    const auto fresh_it = fresh.empty() ? fresh.end() : fresh.find(key);
    if (fresh_it != fresh.end()) cached = &fresh_it->second;
    // Expiry is evaluated against each op's own `now`; `serve_until` is
    // exclusive, so a query at exactly the scheduled revocation instant
    // re-signs instead of serving the stale "good".
    if (cached->der && op.now < cached->serve_until) {
      ++hits;
      op.result = {200, cached->der, 0, true};
      continue;
    }
    ++(cached->der ? expired : misses);
    // The caching decision and the signature come from the SAME record:
    // the serial path's separate post-sign Lookup could observe a record
    // added after signing and cache a stale `unknown` response.
    const std::optional<StatusIndex::Record> record = view.Lookup(key);
    ResponseCache::Entry entry = SignFromRecord(*op.responder, key, record,
                                                op.now);
    ++signed_count;
    op.result = {200, entry.der, 0, false};
    if (record) {
      if (fresh_it != fresh.end())
        fresh_it->second = std::move(entry);
      else
        fresh.emplace(StatusKey(key.begin(), key.end()), std::move(entry));
    }
  }

  metrics_->cache_hits.Add(hits);
  metrics_->cache_misses.Add(misses);
  metrics_->cache_expired.Add(expired);
  metrics_->signed_on_demand.Add(signed_count);
  cache_.CountOutcome(ResponseCache::Outcome::kHit, hits);
  cache_.CountOutcome(ResponseCache::Outcome::kMiss, misses);
  cache_.CountOutcome(ResponseCache::Outcome::kExpired, expired);

  // Install the batch's freshly signed entries unless the index moved
  // under us — an epoch bump means some key's record may have changed
  // since `view` was pinned, and a stale install would undo the
  // invalidation that bump performed.
  if (!fresh.empty() && index_.epoch() == epoch0) {
    std::vector<std::pair<StatusKey, ResponseCache::Entry>> install;
    install.reserve(fresh.size());
    for (auto& [key, entry] : fresh)
      install.emplace_back(key, std::move(entry));
    cache_.PutBatch(std::move(install));
  }

  // Release the admission slots, then publish the new depth (single
  // writer: the gauge is only Set under drain_mu).
  ShardState& state = *shard_states_[shard];
  const std::size_t depth_after =
      state.depth.fetch_sub(count, std::memory_order_acq_rel) - count;
  state.depth_gauge->Set(static_cast<std::int64_t>(depth_after));

  // Wake the waiters last, grouping consecutive ops that share a gate into
  // one Done call. Past this point the ops (and their gates) may be gone.
  std::size_t run_start = 0;
  while (run_start < count) {
    CompletionGate* gate = ops[run_start]->gate;
    std::size_t run_end = run_start + 1;
    while (run_end < count && ops[run_end]->gate == gate) ++run_end;
    gate->Done(run_end - run_start);
    run_start = run_end;
  }
}

net::HttpResponse Frontend::HandleHttp(const net::HttpRequest& request,
                                       util::Timestamp now) {
  StartServing();  // latches routes_ (and the routing table) read-only
  // Observability exposition, exact-path only: every other GET that no
  // auxiliary route claims is an RFC 6960 Appendix A request (including
  // malformed ones, which must still get an OCSP error response rather
  // than a 404).
  if (request.method == "GET" && request.path == "/metrics") {
    net::HttpResponse response;
    response.status = 200;
    const std::string text = obs::MetricsRegistry::Global().DumpText();
    response.body.assign(text.begin(), text.end());
    return response;
  }
  if (request.method == "GET" && request.path == "/metrics.json") {
    // Scrape endpoint for fleet-wide aggregation: only THIS instance's
    // instruments (label-matched), so merging scrapes from several nodes
    // in one simulated process never double-counts the globals.
    obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
    const std::string tag_only = "{" + metrics_label_ + "}";
    const std::string tag_first = "{" + metrics_label_ + ",";
    const auto foreign = [&](const std::string& name) {
      return name.find(tag_only) == std::string::npos &&
             name.find(tag_first) == std::string::npos;
    };
    std::erase_if(snap.counters,
                  [&](const auto& c) { return foreign(c.name); });
    std::erase_if(snap.gauges, [&](const auto& g) { return foreign(g.name); });
    std::erase_if(snap.histograms,
                  [&](const auto& h) { return foreign(h.name); });
    net::HttpResponse response;
    response.status = 200;
    const std::string json = obs::DumpJson(snap);
    response.body.assign(json.begin(), json.end());
    return response;
  }
  obs::SpanContext ctx;
  const obs::SpanContext* ctx_ptr = nullptr;
  if (obs::DistTraceCollector::Global().enabled()) {
    const auto it = request.headers.find(obs::kTraceparentHeader);
    if (it != request.headers.end() &&
        obs::ParseTraceparent(it->second, &ctx)) {
      ctx_ptr = &ctx;
    }
  }
  for (const auto& [prefix, handler] : routes_) {
    if (request.path.rfind(prefix, 0) == 0) return handler(request, now);
  }
  const ServeResult result = request.method == "GET"
                                 ? ServeGetPath(request.path, now, ctx_ptr)
                                 : Serve(request.body, now, ctx_ptr);
  net::HttpResponse response;
  response.status = result.http_status;
  if (result.body) response.body = *result.body;
  response.retry_after = result.retry_after;
  return response;
}

std::shared_ptr<const Bytes> Frontend::Staple(BytesView issuer_key_hash,
                                              const x509::Serial& serial,
                                              util::Timestamp now) {
  StartServing();
  const ocsp::Responder* responder = FindResponder(issuer_key_hash);
  if (responder == nullptr) return nullptr;
  metrics_->staples.Increment();
  MaybeFlush();

  const StatusKey key = MakeStatusKey(issuer_key_hash, serial);
  const ResponseCache::LookupResult cached = cache_.Get(key, now);
  if (cached.outcome == ResponseCache::Outcome::kHit) {
    metrics_->cache_hits.Increment();
    return cached.der;
  }
  (cached.outcome == ResponseCache::Outcome::kExpired
       ? metrics_->cache_expired
       : metrics_->cache_misses)
      .Increment();
  const std::uint64_t epoch0 = index_.epoch();
  const std::optional<StatusIndex::Record> record = index_.Lookup(key);
  ResponseCache::Entry entry = SignFromRecord(*responder, key, record, now);
  metrics_->signed_on_demand.Increment();
  std::shared_ptr<const Bytes> der = entry.der;
  // Same record decides signature and cachability; same epoch guard as the
  // batch path.
  if (record && index_.epoch() == epoch0) cache_.Put(key, std::move(entry));
  return der;
}

void Frontend::EnsurePool() {
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(options_.threads);
}

std::size_t Frontend::RebuildAll(util::Timestamp now) {
  StartServing();
  std::lock_guard maintenance(maintenance_mu_);
  Flush();
  const std::vector<StatusKey> keys = index_.SortedKeys();
  if (keys.empty()) return 0;
  EnsurePool();

  std::vector<std::pair<StatusKey, ResponseCache::Entry>> slots(keys.size());
  pool_->ParallelFor(keys.size(), [&](std::size_t i) {
    const ocsp::Responder* responder =
        FindResponder(IssuerHashOfKey(keys[i]));
    slots[i] = {keys[i], SignEntry(*responder, keys[i], now)};
  });
  cache_.PutBatch(std::move(slots));
  metrics_->batch_signed.Add(keys.size());
  return keys.size();
}

std::size_t Frontend::RefreshStale(util::Timestamp now) {
  StartServing();
  std::lock_guard maintenance(maintenance_mu_);
  Flush();
  const std::vector<StatusKey> stale =
      cache_.KeysStaleBy(now + options_.refresh_headroom_seconds);
  if (stale.empty()) return 0;
  EnsurePool();

  std::vector<std::pair<StatusKey, ResponseCache::Entry>> slots(stale.size());
  std::atomic<std::size_t> dropped{0};
  pool_->ParallelFor(stale.size(), [&](std::size_t i) {
    // An entry may have left the index since it was cached (Remove()):
    // refresh would pin an `unknown` forever, so drop it instead.
    if (!index_.Lookup(stale[i])) {
      ++dropped;
      return;
    }
    const ocsp::Responder* responder =
        FindResponder(IssuerHashOfKey(stale[i]));
    slots[i] = {stale[i], SignEntry(*responder, stale[i], now)};
  });
  std::erase_if(slots, [](const auto& slot) { return slot.second.der == nullptr; });
  for (const StatusKey& key : stale)
    if (!index_.Lookup(key)) cache_.Invalidate(key);
  cache_.PutBatch(std::move(slots));
  const std::size_t refreshed = stale.size() - dropped;
  metrics_->refreshed.Add(refreshed);
  return refreshed;
}

Frontend::Counters Frontend::counters() const {
  Counters out;
  out.requests = metrics_->requests.Value();
  out.cache_hits = metrics_->cache_hits.Value();
  out.cache_misses = metrics_->cache_misses.Value();
  out.cache_expired = metrics_->cache_expired.Value();
  out.signed_on_demand = metrics_->signed_on_demand.Value();
  out.batch_signed = metrics_->batch_signed.Value();
  out.refreshed = metrics_->refreshed.Value();
  out.shed = metrics_->shed.Value();
  out.malformed = metrics_->malformed.Value();
  out.unauthorized = metrics_->unauthorized.Value();
  out.staples = metrics_->staples.Value();
  out.status_updates = metrics_->status_updates.Value();
  return out;
}

util::Accumulator Frontend::latency() const {
  const obs::HistogramSnapshot snap = metrics_->latency_ns.Snapshot();
  if (snap.count == 0) return {};
  return util::Accumulator::FromSummary(
      snap.count, snap.Mean() / 1e9, static_cast<double>(snap.min) / 1e9,
      static_cast<double>(snap.max) / 1e9);
}

obs::HistogramSnapshot Frontend::latency_histogram() const {
  return metrics_->latency_ns.Snapshot();
}

}  // namespace rev::serve
