#include "serve/frontend.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"

namespace rev::serve {

// Registry instruments, one set per frontend instance (label "frontend=N")
// so counters() stays exact when several frontends coexist. References are
// resolved once at construction; the hot path touches only lock-free
// sharded atomics.
struct Frontend::Instruments {
  explicit Instruments(const std::string& label)
      : requests(Get("serve.requests", label)),
        cache_hits(Get("serve.cache_hits", label)),
        cache_misses(Get("serve.cache_misses", label)),
        cache_expired(Get("serve.cache_expired", label)),
        signed_on_demand(Get("serve.signed_on_demand", label)),
        batch_signed(Get("serve.batch_signed", label)),
        refreshed(Get("serve.refreshed", label)),
        shed(Get("serve.shed", label)),
        malformed(Get("serve.malformed", label)),
        unauthorized(Get("serve.unauthorized", label)),
        staples(Get("serve.staples", label)),
        status_updates(Get("serve.status_updates", label)),
        latency_ns(obs::MetricsRegistry::Global().GetHistogram(
            "serve.latency_ns{" + label + "}")) {}

  static obs::Counter& Get(const char* name, const std::string& label) {
    return obs::MetricsRegistry::Global().GetCounter(std::string(name) + "{" +
                                                     label + "}");
  }

  obs::Counter& requests;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& cache_expired;
  obs::Counter& signed_on_demand;
  obs::Counter& batch_signed;
  obs::Counter& refreshed;
  obs::Counter& shed;
  obs::Counter& malformed;
  obs::Counter& unauthorized;
  obs::Counter& staples;
  obs::Counter& status_updates;
  obs::Histogram& latency_ns;
};

Frontend::Frontend(FrontendOptions options)
    : options_(options),
      index_(options.num_shards),
      cache_(options.num_shards),
      inflight_(new std::atomic<std::size_t>[index_.num_shards()]),
      metrics_label_("frontend=" + std::to_string(obs::NextInstanceId())),
      metrics_(std::make_unique<Instruments>(metrics_label_)) {
  for (std::size_t s = 0; s < index_.num_shards(); ++s) inflight_[s] = 0;
  try_later_der_ = std::make_shared<const Bytes>(
      ocsp::MakeErrorResponse(ocsp::ResponseStatus::kTryLater).der);
  malformed_der_ = std::make_shared<const Bytes>(
      ocsp::MakeErrorResponse(ocsp::ResponseStatus::kMalformedRequest).der);
  unauthorized_der_ = std::make_shared<const Bytes>(
      ocsp::MakeErrorResponse(ocsp::ResponseStatus::kUnauthorized).der);
}

Frontend::~Frontend() {
  for (auto& [hash, responder] : responders_) responder->SetObserver({});
}

void Frontend::AttachResponder(ocsp::Responder* responder) {
  responders_[responder->issuer_key_hash()] = responder;
  responder->SetObserver(
      [this, responder](const x509::Serial& serial,
                        const std::optional<ocsp::Responder::RecordView>& record) {
        OnMutation(*responder, serial, record);
      });
  // Bulk-load the existing records through the same pending path so the
  // first request (or an explicit Flush) applies them as one batch.
  std::lock_guard lock(pending_mu_);
  for (auto& [serial, record] : responder->SnapshotRecords()) {
    pending_.push_back(
        {MakeStatusKey(responder->issuer_key_hash(), serial), record});
  }
  has_pending_.store(!pending_.empty(), std::memory_order_release);
}

const ocsp::Responder* Frontend::FindResponder(
    BytesView issuer_key_hash) const {
  // Transparent heterogeneous lookup would avoid this copy, but routing is
  // once per request and the key is 32 bytes.
  auto it = responders_.find(Bytes(issuer_key_hash.begin(), issuer_key_hash.end()));
  return it == responders_.end() ? nullptr : it->second;
}

void Frontend::OnMutation(
    const ocsp::Responder& responder, const x509::Serial& serial,
    const std::optional<ocsp::Responder::RecordView>& record) {
  std::lock_guard lock(pending_mu_);
  pending_.push_back(
      {MakeStatusKey(responder.issuer_key_hash(), serial), record});
  has_pending_.store(true, std::memory_order_release);
}

void Frontend::MaybeFlush() {
  if (has_pending_.load(std::memory_order_acquire)) Flush();
}

void Frontend::Flush() {
  std::vector<StatusIndex::Update> batch;
  {
    std::lock_guard lock(pending_mu_);
    batch.swap(pending_);
    has_pending_.store(false, std::memory_order_release);
  }
  if (batch.empty()) return;
  index_.Apply(batch);
  // Any precomputed response for a touched key is now suspect.
  for (const StatusIndex::Update& update : batch) cache_.Invalidate(update.key);
  metrics_->status_updates.Add(batch.size());
}

ResponseCache::Entry Frontend::SignEntry(const ocsp::Responder& responder,
                                         const StatusKey& key,
                                         util::Timestamp now) {
  const auto record = index_.Lookup(key);
  const x509::Serial serial = SerialOfKey(key);
  const ocsp::SingleResponse single = responder.MakeSingle(serial, record, now);
  ocsp::OcspResponse response = responder.Sign({single}, now);

  ResponseCache::Entry entry;
  entry.der = std::make_shared<const Bytes>(std::move(response.der));
  entry.signed_at = now;
  entry.serve_until = single.next_update;
  // A pre-signed "good" must not outlive a scheduled revocation: clamp the
  // serving window to the moment the status changes.
  if (record && record->status == ocsp::CertStatus::kRevoked &&
      record->revocation_time > now) {
    entry.serve_until = std::min(entry.serve_until, record->revocation_time);
  }
  return entry;
}

std::size_t Frontend::ShardOf(BytesView issuer_key_hash,
                              const x509::Serial& serial) const {
  return index_.ShardOf(MakeStatusKey(issuer_key_hash, serial));
}

bool Frontend::TryEnterShard(std::size_t shard) {
  auto& slot = inflight_[shard];
  if (slot.fetch_add(1, std::memory_order_acq_rel) >= options_.per_shard_queue) {
    slot.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

void Frontend::ExitShard(std::size_t shard) {
  inflight_[shard].fetch_sub(1, std::memory_order_acq_rel);
}

Frontend::ServeResult Frontend::Serve(BytesView request_der,
                                      util::Timestamp now) {
  metrics_->requests.Increment();
  auto request = ocsp::ParseOcspRequest(request_der);
  if (!request) {
    metrics_->malformed.Increment();
    return {200, malformed_der_, 0, false};
  }
  return ServeParsed(*request, now);
}

Frontend::ServeResult Frontend::ServeGetPath(std::string_view path,
                                             util::Timestamp now) {
  metrics_->requests.Increment();
  auto request = ocsp::ParseOcspGetPath(path);
  if (!request) {
    metrics_->malformed.Increment();
    return {200, malformed_der_, 0, false};
  }
  return ServeParsed(*request, now);
}

Frontend::ServeResult Frontend::ServeParsed(const ocsp::OcspRequest& request,
                                            util::Timestamp now) {
  obs::Span span("serve.request");
  const auto start = options_.record_latency
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};

  const ocsp::Responder* responder =
      FindResponder(request.cert_ids.front().issuer_key_hash);
  if (responder == nullptr) {
    metrics_->unauthorized.Increment();
    return {200, unauthorized_der_, 0, false};
  }
  for (const ocsp::CertId& id : request.cert_ids) {
    if (id.issuer_name_hash != responder->issuer_name_hash() ||
        id.issuer_key_hash != responder->issuer_key_hash()) {
      metrics_->unauthorized.Increment();
      return {200, unauthorized_der_, 0, false};
    }
  }

  MaybeFlush();

  const StatusKey key = MakeStatusKey(responder->issuer_key_hash(),
                                      request.cert_ids.front().serial);
  const std::size_t shard = index_.ShardOf(key);
  if (!TryEnterShard(shard)) {
    metrics_->shed.Increment();
    return {503, try_later_der_, options_.retry_after_seconds, false};
  }

  ServeResult result;
  if (request.cert_ids.size() == 1 && request.nonce.empty()) {
    // Hot path: precomputed response, hash lookup + pointer copy.
    const ResponseCache::LookupResult cached = cache_.Get(key, now);
    if (cached.outcome == ResponseCache::Outcome::kHit) {
      metrics_->cache_hits.Increment();
      result = {200, cached.der, 0, true};
    } else {
      (cached.outcome == ResponseCache::Outcome::kExpired
           ? metrics_->cache_expired
           : metrics_->cache_misses)
          .Increment();
      ResponseCache::Entry entry = SignEntry(*responder, key, now);
      metrics_->signed_on_demand.Increment();
      result = {200, entry.der, 0, false};
      // Only known serials enter the cache: caching `unknown` answers would
      // let arbitrary query strings grow the cache without bound.
      if (index_.Lookup(key)) cache_.Put(key, std::move(entry));
    }
  } else {
    // Multi-cert or nonced requests are signed per request (a nonce makes
    // the response unique by construction; RFC 6960 notes pre-produced
    // responses cannot carry one).
    std::vector<ocsp::SingleResponse> singles;
    singles.reserve(request.cert_ids.size());
    for (const ocsp::CertId& id : request.cert_ids) {
      const StatusKey id_key =
          MakeStatusKey(responder->issuer_key_hash(), id.serial);
      singles.push_back(
          responder->MakeSingle(id.serial, index_.Lookup(id_key), now));
    }
    ocsp::OcspResponse response =
        responder->Sign(singles, now, request.nonce);
    metrics_->signed_on_demand.Increment();
    result = {200, std::make_shared<const Bytes>(std::move(response.der)), 0,
              false};
  }
  ExitShard(shard);

  if (options_.record_latency) {
    // Lock-free histogram: the accounting no longer funnels every thread
    // through one mutex (the old Accumulator did).
    metrics_->latency_ns.RecordSeconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  return result;
}

net::HttpResponse Frontend::HandleHttp(const net::HttpRequest& request,
                                       util::Timestamp now) {
  // Observability exposition, exact-path only: every other GET is an RFC
  // 6960 Appendix A request (including malformed ones, which must still get
  // an OCSP error response rather than a 404).
  if (request.method == "GET" && request.path == "/metrics") {
    net::HttpResponse response;
    response.status = 200;
    const std::string text = obs::MetricsRegistry::Global().DumpText();
    response.body.assign(text.begin(), text.end());
    return response;
  }
  const ServeResult result = request.method == "GET"
                                 ? ServeGetPath(request.path, now)
                                 : Serve(request.body, now);
  net::HttpResponse response;
  response.status = result.http_status;
  if (result.body) response.body = *result.body;
  response.retry_after = result.retry_after;
  return response;
}

std::shared_ptr<const Bytes> Frontend::Staple(BytesView issuer_key_hash,
                                              const x509::Serial& serial,
                                              util::Timestamp now) {
  const ocsp::Responder* responder = FindResponder(issuer_key_hash);
  if (responder == nullptr) return nullptr;
  metrics_->staples.Increment();
  MaybeFlush();

  const StatusKey key = MakeStatusKey(issuer_key_hash, serial);
  const ResponseCache::LookupResult cached = cache_.Get(key, now);
  if (cached.outcome == ResponseCache::Outcome::kHit) {
    metrics_->cache_hits.Increment();
    return cached.der;
  }
  (cached.outcome == ResponseCache::Outcome::kExpired
       ? metrics_->cache_expired
       : metrics_->cache_misses)
      .Increment();
  ResponseCache::Entry entry = SignEntry(*responder, key, now);
  metrics_->signed_on_demand.Increment();
  std::shared_ptr<const Bytes> der = entry.der;
  if (index_.Lookup(key)) cache_.Put(key, std::move(entry));
  return der;
}

void Frontend::EnsurePool() {
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(options_.threads);
}

std::size_t Frontend::RebuildAll(util::Timestamp now) {
  std::lock_guard maintenance(maintenance_mu_);
  Flush();
  const std::vector<StatusKey> keys = index_.SortedKeys();
  if (keys.empty()) return 0;
  EnsurePool();

  std::vector<std::pair<StatusKey, ResponseCache::Entry>> slots(keys.size());
  pool_->ParallelFor(keys.size(), [&](std::size_t i) {
    const ocsp::Responder* responder =
        FindResponder(IssuerHashOfKey(keys[i]));
    slots[i] = {keys[i], SignEntry(*responder, keys[i], now)};
  });
  cache_.PutBatch(std::move(slots));
  metrics_->batch_signed.Add(keys.size());
  return keys.size();
}

std::size_t Frontend::RefreshStale(util::Timestamp now) {
  std::lock_guard maintenance(maintenance_mu_);
  Flush();
  const std::vector<StatusKey> stale =
      cache_.KeysStaleBy(now + options_.refresh_headroom_seconds);
  if (stale.empty()) return 0;
  EnsurePool();

  std::vector<std::pair<StatusKey, ResponseCache::Entry>> slots(stale.size());
  std::atomic<std::size_t> dropped{0};
  pool_->ParallelFor(stale.size(), [&](std::size_t i) {
    // An entry may have left the index since it was cached (Remove()):
    // refresh would pin an `unknown` forever, so drop it instead.
    if (!index_.Lookup(stale[i])) {
      ++dropped;
      return;
    }
    const ocsp::Responder* responder =
        FindResponder(IssuerHashOfKey(stale[i]));
    slots[i] = {stale[i], SignEntry(*responder, stale[i], now)};
  });
  std::erase_if(slots, [](const auto& slot) { return slot.second.der == nullptr; });
  for (const StatusKey& key : stale)
    if (!index_.Lookup(key)) cache_.Invalidate(key);
  cache_.PutBatch(std::move(slots));
  const std::size_t refreshed = stale.size() - dropped;
  metrics_->refreshed.Add(refreshed);
  return refreshed;
}

Frontend::Counters Frontend::counters() const {
  Counters out;
  out.requests = metrics_->requests.Value();
  out.cache_hits = metrics_->cache_hits.Value();
  out.cache_misses = metrics_->cache_misses.Value();
  out.cache_expired = metrics_->cache_expired.Value();
  out.signed_on_demand = metrics_->signed_on_demand.Value();
  out.batch_signed = metrics_->batch_signed.Value();
  out.refreshed = metrics_->refreshed.Value();
  out.shed = metrics_->shed.Value();
  out.malformed = metrics_->malformed.Value();
  out.unauthorized = metrics_->unauthorized.Value();
  out.staples = metrics_->staples.Value();
  out.status_updates = metrics_->status_updates.Value();
  return out;
}

util::Accumulator Frontend::latency() const {
  const obs::HistogramSnapshot snap = metrics_->latency_ns.Snapshot();
  if (snap.count == 0) return {};
  return util::Accumulator::FromSummary(
      snap.count, snap.Mean() / 1e9, static_cast<double>(snap.min) / 1e9,
      static_cast<double>(snap.max) / 1e9);
}

obs::HistogramSnapshot Frontend::latency_histogram() const {
  return metrics_->latency_ns.Snapshot();
}

}  // namespace rev::serve
