#include "serve/response_cache.h"

#include <algorithm>
#include <string>

namespace rev::serve {

namespace {

std::string CacheMetricName(const char* metric, std::uint64_t instance) {
  return std::string("serve.response_cache.") + metric + "{cache=" +
         std::to_string(instance) + "}";
}

}  // namespace

ResponseCache::ResponseCache(std::size_t num_shards)
    : ResponseCache(num_shards, obs::NextInstanceId()) {}

ResponseCache::ResponseCache(std::size_t num_shards, std::uint64_t instance)
    : shards_(num_shards == 0 ? 1 : num_shards),
      hits_(obs::MetricsRegistry::Global().GetCounter(
          CacheMetricName("hits", instance))),
      misses_(obs::MetricsRegistry::Global().GetCounter(
          CacheMetricName("misses", instance))),
      expired_(obs::MetricsRegistry::Global().GetCounter(
          CacheMetricName("expired", instance))) {}

ResponseCache::LookupResult ResponseCache::Get(const StatusKey& key,
                                               util::Timestamp now) const {
  const Shard& shard = shards_[ShardOf(key)];
  std::shared_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.Increment();
    return {Outcome::kMiss, nullptr};
  }
  if (now >= it->second.serve_until) {
    expired_.Increment();
    return {Outcome::kExpired, nullptr};
  }
  hits_.Increment();
  return {Outcome::kHit, it->second.der};
}

void ResponseCache::PeekBatch(const std::vector<BytesView>& keys,
                              std::vector<Entry>* out) const {
  out->clear();
  out->resize(keys.size());
  if (keys.empty()) return;
  const Shard& shard = shards_[ShardOf(keys.front())];
  std::shared_lock lock(shard.mu);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = shard.map.find(keys[i]);
    if (it != shard.map.end()) (*out)[i] = it->second;
  }
}

void ResponseCache::CountOutcome(Outcome outcome, std::uint64_t n) {
  if (n == 0) return;
  switch (outcome) {
    case Outcome::kHit:
      hits_.Add(n);
      break;
    case Outcome::kMiss:
      misses_.Add(n);
      break;
    case Outcome::kExpired:
      expired_.Add(n);
      break;
  }
}

void ResponseCache::Put(const StatusKey& key, Entry entry) {
  Shard& shard = shards_[ShardOf(key)];
  std::unique_lock lock(shard.mu);
  shard.map[key] = std::move(entry);
}

void ResponseCache::PutBatch(std::vector<std::pair<StatusKey, Entry>> entries) {
  // One lock acquisition per affected shard, not per entry.
  std::vector<std::vector<std::pair<StatusKey, Entry>*>> by_shard(
      shards_.size());
  for (auto& entry : entries) by_shard[ShardOf(entry.first)].push_back(&entry);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    std::unique_lock lock(shards_[s].mu);
    for (auto* entry : by_shard[s])
      shards_[s].map[entry->first] = std::move(entry->second);
  }
}

void ResponseCache::Invalidate(const StatusKey& key) {
  Shard& shard = shards_[ShardOf(key)];
  std::unique_lock lock(shard.mu);
  shard.map.erase(key);
}

void ResponseCache::InvalidateBatch(const std::vector<StatusKey>& keys) {
  for (const StatusKey& key : keys) Invalidate(key);
}

void ResponseCache::Clear() {
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    shard.map.clear();
  }
}

std::vector<StatusKey> ResponseCache::KeysStaleBy(
    util::Timestamp deadline) const {
  std::vector<StatusKey> keys;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, entry] : shard.map)
      if (entry.serve_until <= deadline) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::pair<StatusKey, ResponseCache::Entry>>
ResponseCache::ExportEntries(util::Timestamp now) const {
  std::vector<std::pair<StatusKey, Entry>> entries;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, entry] : shard.map)
      if (now < entry.serve_until) entries.emplace_back(key, entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

std::size_t ResponseCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace rev::serve
