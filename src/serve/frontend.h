// The revocation-status serving frontend: turns per-CA `ocsp::Responder`
// state into a service that sustains heavy query load.
//
//   request ──► admission (queue-depth watermark per shard; 503 +
//   Retry-After when over capacity) ──► lock-free MPSC enqueue onto the
//   key's shard, carrying a completion slot ──► shard drain: whichever
//   caller wins the shard's drain lock becomes the combiner and pops a
//   batch, paying one pending-mutation flush, one StatusIndex snapshot
//   copy, and one ResponseCache lock for the whole batch ──► hit = pointer
//   copy; miss = batched re-sign that coalesces same-key misses, installed
//   epoch-guarded.
//
// There are no dedicated worker threads: the run loop is flat-combining,
// softirq-style. An uncontended caller wins its shard's drain lock
// immediately and processes its own request inline; under contention the
// losing callers' requests queue up and the current combiner drains them
// as a batch — batching emerges exactly when there is load to amortize.
//
// The index is fed by Responder mutation observers through a pending
// buffer that is flushed as one epoch-swap batch, so a burst of
// revocations costs one snapshot rebuild per shard instead of one per
// record. Responses are deterministic: signing is a pure function of
// (record, now), so cache contents are byte-identical no matter which
// combiner batch-signed them. See docs/serving.md.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "net/simnet.h"
#include "obs/distrace.h"
#include "obs/metrics.h"
#include "ocsp/responder.h"
#include "serve/response_cache.h"
#include "serve/status_index.h"
#include "util/mpsc_queue.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace rev::serve {

struct FrontendOptions {
  std::size_t num_shards = 16;
  // Admission watermark: maximum requests queued-or-in-flight per shard
  // before the frontend sheds load. Also sizes the shard's MPSC ring
  // (rounded up to a power of two), so an admitted request always finds a
  // free cell. Generous by default; benches/tests tighten it.
  std::size_t per_shard_queue = 128;
  // Retry-After hint attached to 503 responses, seconds.
  std::int64_t retry_after_seconds = 2;
  // RefreshStale() re-signs entries going stale within this window.
  std::int64_t refresh_headroom_seconds = util::kSecondsPerDay;
  // Worker threads for batch signing (RebuildAll/RefreshStale); 1 = inline
  // serial execution (no worker threads spawned), 0 = hardware concurrency.
  unsigned threads = 1;
  // Upper bound on ops a combiner pops per drain iteration (capped at 256,
  // the drain loop's stack batch). Larger batches amortize better; smaller
  // ones bound the worst-case time a caller spends combining for others.
  std::size_t max_batch = 128;
  // Per-request latency accounting (steady_clock) into a lock-free
  // obs::Histogram — cheap enough to leave on under full load; disable to
  // shave the last nanoseconds off the hot path.
  bool record_latency = true;
};

class Frontend {
 public:
  explicit Frontend(FrontendOptions options = {});
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  // Attaches an issuing CA's responder: bulk-loads its records into the
  // index and installs a mutation observer so later Revoke()/Remove()/
  // AddCertificate() calls invalidate the affected cache entry. The
  // responder must outlive this frontend, and attachment must finish
  // before serving starts: the first Serve/ServeBatch/Staple/maintenance
  // call latches the routing table read-only, and a later attach throws
  // std::logic_error rather than racing the readers.
  void AttachResponder(ocsp::Responder* responder);

  struct ServeResult {
    int http_status = 200;
    std::shared_ptr<const Bytes> body;
    std::int64_t retry_after = 0;  // seconds, set iff shed (503)
    bool cache_hit = false;
  };

  // POST form: a DER OCSP request. Thread-safe; blocks until a combiner
  // (possibly this thread) has produced the response. A non-null `ctx`
  // (the caller's distributed-trace context, usually extracted from the
  // traceparent header by HandleHttp) records a server span for the
  // request and tags the latency histogram bucket with the trace id as an
  // exemplar.
  ServeResult Serve(BytesView request_der, util::Timestamp now,
                    const obs::SpanContext* ctx = nullptr);

  // RFC 6960 Appendix A GET form: "/{base64(request)}". Thread-safe.
  ServeResult ServeGetPath(std::string_view path, util::Timestamp now,
                           const obs::SpanContext* ctx = nullptr);

  // Batch entry point: admits and enqueues every request up front, then
  // drains the touched shards until all have completed. Results line up
  // index-for-index with `requests`. Shedding, malformed and unauthorized
  // handling are identical to per-request Serve — the batch path yields
  // byte-identical bodies and identical counter totals. `ctx` covers the
  // whole batch (one server span, one exemplar).
  std::vector<ServeResult> ServeBatch(const std::vector<BytesView>& requests,
                                      util::Timestamp now,
                                      const obs::SpanContext* ctx = nullptr);

  // Adapter for net::SimNet host handlers (GET and POST). Also serves the
  // observability exposition: `GET /metrics` is the global registry text
  // dump; `GET /metrics.json` is the JSON exposition filtered to THIS
  // instance's instruments (the scrape target for fleet-wide aggregation,
  // see fleet/metricsview.h). A traceparent request header is extracted
  // here and propagated into the serve path.
  net::HttpResponse HandleHttp(const net::HttpRequest& request,
                               util::Timestamp now);

  // Registers an auxiliary HTTP route: a request whose path starts with
  // `path_prefix` is handed to `handler` instead of the OCSP dispatch —
  // how the cascade publisher rides this frontend (/cascade/*, see
  // docs/distribution.md). Routes are scanned in registration order after
  // the /metrics check. Same latch rules as AttachResponder: register
  // every route before the first request or get std::logic_error; the
  // handler must stay valid for the frontend's lifetime.
  void AddRoute(std::string path_prefix, net::HttpHandler handler);

  // Direct in-process API (OCSP stapling, benches): the precomputed or
  // freshly signed response DER for one serial. Bypasses admission — the
  // caller is in-process, not a queued network client. Returns nullptr if
  // no responder is attached for `issuer_key_hash`.
  std::shared_ptr<const Bytes> Staple(BytesView issuer_key_hash,
                                      const x509::Serial& serial,
                                      util::Timestamp now);

  // Batch-signs a response for every record in the index (thread-pool
  // fan-out, deterministic output). Returns the number signed.
  std::size_t RebuildAll(util::Timestamp now);

  // Staleness-driven refresh: re-signs cached responses whose validity
  // window ends within `refresh_headroom_seconds` of `now`. Returns the
  // number re-signed. Intended to run from a maintenance tick so the hot
  // path never pays for re-signing.
  std::size_t RefreshStale(util::Timestamp now);

  // Applies buffered responder mutations to the index now (normally done
  // lazily by the next drained batch).
  void Flush();

  // --- replication hooks (src/fleet) --------------------------------------
  // Full-state import of a replicated status snapshot: diffs `records`
  // (sorted by key, as StatusIndex::ExportRecords and the fleet snapshot
  // wire format both guarantee) against the local index and applies exactly
  // the changed keys — upserts for new or changed records, erases for keys
  // the snapshot no longer contains — through the same pending/flush path
  // the mutation observers use, so the affected ResponseCache entries are
  // invalidated together with the index swap. Returns the number of keys
  // changed. Safe against concurrent serving; concurrent importers must be
  // serialized externally (a frontend has one replication channel).
  std::size_t ImportStatusRecords(
      const std::vector<std::pair<StatusKey, StatusIndex::Record>>& records);

  // Installs pre-signed responses pushed by the authoritative publisher in
  // one PutBatch. Entries carry their own serve_until expiry, so a stale
  // batch can never out-serve a scheduled revocation the publisher already
  // clamped for. Returns the number installed.
  std::size_t ImportResponseEntries(
      std::vector<std::pair<StatusKey, ResponseCache::Entry>> entries);

  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;    // absent from cache
    std::uint64_t cache_expired = 0;   // present but past serve_until
    std::uint64_t signed_on_demand = 0;
    std::uint64_t batch_signed = 0;
    std::uint64_t refreshed = 0;
    std::uint64_t shed = 0;            // 503s
    std::uint64_t malformed = 0;
    std::uint64_t unauthorized = 0;
    std::uint64_t staples = 0;
    std::uint64_t status_updates = 0;  // observer events applied
  };
  Counters counters() const;

  // Compatibility shim over the lock-free latency histogram: count, mean,
  // min, and max of served-request latency in seconds (variance reports 0 —
  // the histogram keeps moments, not samples). Empty when record_latency is
  // off. Prefer latency_histogram() for quantiles.
  util::Accumulator latency() const;

  // The per-request latency distribution in nanoseconds.
  obs::HistogramSnapshot latency_histogram() const;

  // Label suffix of this instance's registry instruments, "frontend=N"
  // (e.g. "serve.requests{frontend=N}" in the /metrics exposition).
  const std::string& metrics_label() const { return metrics_label_; }

  const StatusIndex& index() const { return index_; }
  const ResponseCache& cache() const { return cache_; }
  const FrontendOptions& options() const { return options_; }

  // --- admission introspection (tests saturate queues deterministically) --
  std::size_t ShardOf(BytesView issuer_key_hash,
                      const x509::Serial& serial) const;
  bool TryEnterShard(std::size_t shard);  // occupies one admission slot
  void ExitShard(std::size_t shard);      // releases it

 private:
  struct Instruments;
  struct Op;
  class CompletionGate;
  struct ShardState;

  // Transparent hash/eq so FindResponder can probe the routing table with
  // a BytesView — no 32-byte heap copy per request on the hot path. Reuses
  // the word-wise status-key mix (the routing key is the same kind of
  // cryptographic hash).
  using RouteHash = StatusKeyHash;
  using RouteEq = StatusKeyEq;

  const ocsp::Responder* FindResponder(BytesView issuer_key_hash) const;
  void OnMutation(const ocsp::Responder& responder, const x509::Serial& serial,
                  const std::optional<ocsp::Responder::RecordView>& record);
  void MaybeFlush();
  // Latches the routing table read-only before the first read of it. The
  // fast path after the first call is a single acquire load.
  void StartServing();
  ResponseCache::Entry SignEntry(const ocsp::Responder& responder,
                                 BytesView key, util::Timestamp now);
  ResponseCache::Entry SignFromRecord(
      const ocsp::Responder& responder, BytesView key,
      const std::optional<StatusIndex::Record>& record, util::Timestamp now);
  ServeResult ServeParsed(const ocsp::OcspRequest& request, util::Timestamp now,
                          const obs::SpanContext* ctx);
  // Common tail of the single-request entry points: admission, enqueue on
  // the key's shard, drive the combiner protocol to completion, record
  // latency from `start`. The status key is built inline in the op from
  // the responder's issuer hash and `serial` (no heap key on the hot
  // path). `request` may be null iff `cacheable` (the zero-allocation
  // single-cert fast path never needs the parsed form).
  ServeResult EnqueueOne(const ocsp::OcspRequest* request,
                         const ocsp::Responder* responder, BytesView serial,
                         bool cacheable, util::Timestamp now,
                         std::chrono::steady_clock::time_point start,
                         const obs::SpanContext* ctx);
  // Combiner: pops batches off `shard`'s queue and processes them until the
  // queue is empty. Caller must hold the shard's drain lock.
  void DrainShard(std::size_t shard);
  void ProcessBatch(std::size_t shard, Op** ops, std::size_t count);
  void ExecuteDirect(Op& op);
  // Drives the combiner protocol until `gate` reports all ops complete:
  // try-lock and drain each touched shard, then briefly timed-wait for
  // another combiner to finish our ops (the timeout covers the rare
  // push-after-drain window).
  void RunUntil(CompletionGate& gate, const std::size_t* touched,
                std::size_t count);
  void EnsurePool();

  FrontendOptions options_;
  StatusIndex index_;
  ResponseCache cache_;
  std::unordered_map<Bytes, ocsp::Responder*, RouteHash, RouteEq> responders_;
  // Auxiliary prefix routes (AddRoute); latched read-only with the table.
  std::vector<std::pair<std::string, net::HttpHandler>> routes_;

  // Late-attach latch (see AttachResponder). `attach_mu_` orders the last
  // attach against the first serve; after that, readers never lock.
  std::mutex attach_mu_;
  std::atomic<bool> serving_started_{false};

  // Buffered observer events, applied as one Apply() batch.
  std::mutex pending_mu_;
  std::vector<StatusIndex::Update> pending_;
  std::atomic<bool> has_pending_{false};

  // Per-shard run-loop state: MPSC ring, drain (combiner) lock, and the
  // admission depth watermark.
  std::vector<std::unique_ptr<ShardState>> shard_states_;

  // Batch-signing pool, created on first use; maintenance calls serialized.
  std::mutex maintenance_mu_;
  std::unique_ptr<util::ThreadPool> pool_;

  // Registry instruments ("serve.*{frontend=N}"): sharded counters, the
  // lock-free latency histogram, and the per-drain batch-size histogram —
  // the hot path never takes a lock for accounting.
  std::string metrics_label_;
  std::unique_ptr<Instruments> metrics_;

  std::shared_ptr<const Bytes> try_later_der_;
  std::shared_ptr<const Bytes> malformed_der_;
  std::shared_ptr<const Bytes> unauthorized_der_;
};

}  // namespace rev::serve
