// The revocation-status serving frontend: turns per-CA `ocsp::Responder`
// state into a service that sustains heavy query load.
//
//   request ──► admission (bounded per-shard in-flight budget; 503 +
//   Retry-After when over capacity) ──► ResponseCache (precomputed,
//   batch-signed DER; hit = hash lookup + shared_ptr copy) ──► on miss,
//   sign-on-demand from the sharded StatusIndex snapshot.
//
// The index is fed by Responder mutation observers through a pending
// buffer that is flushed as one epoch-swap batch, so a burst of
// revocations costs one snapshot rebuild per shard instead of one per
// record. Responses are deterministic: signing is a pure function of
// (record, now), so cache contents are byte-identical no matter how many
// threads batch-signed them. See docs/serving.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "net/simnet.h"
#include "obs/metrics.h"
#include "ocsp/responder.h"
#include "serve/response_cache.h"
#include "serve/status_index.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace rev::serve {

struct FrontendOptions {
  std::size_t num_shards = 16;
  // Admission budget: maximum requests in flight per shard before the
  // frontend sheds load. Generous by default; benches/tests tighten it.
  std::size_t per_shard_queue = 128;
  // Retry-After hint attached to 503 responses, seconds.
  std::int64_t retry_after_seconds = 2;
  // RefreshStale() re-signs entries going stale within this window.
  std::int64_t refresh_headroom_seconds = util::kSecondsPerDay;
  // Worker threads for batch signing (RebuildAll/RefreshStale); 1 = inline
  // serial execution (no worker threads spawned), 0 = hardware concurrency.
  unsigned threads = 1;
  // Per-request latency accounting (steady_clock) into a lock-free
  // obs::Histogram — cheap enough to leave on under full load; disable to
  // shave the last nanoseconds off the hot path.
  bool record_latency = true;
};

class Frontend {
 public:
  explicit Frontend(FrontendOptions options = {});
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  // Attaches an issuing CA's responder: bulk-loads its records into the
  // index and installs a mutation observer so later Revoke()/Remove()/
  // AddCertificate() calls invalidate the affected cache entry. The
  // responder must outlive this frontend, and attachment must finish
  // before serving starts (the routing table is not locked).
  void AttachResponder(ocsp::Responder* responder);

  struct ServeResult {
    int http_status = 200;
    std::shared_ptr<const Bytes> body;
    std::int64_t retry_after = 0;  // seconds, set iff shed (503)
    bool cache_hit = false;
  };

  // POST form: a DER OCSP request. Thread-safe.
  ServeResult Serve(BytesView request_der, util::Timestamp now);

  // RFC 6960 Appendix A GET form: "/{base64(request)}". Thread-safe.
  ServeResult ServeGetPath(std::string_view path, util::Timestamp now);

  // Adapter for net::SimNet host handlers (GET and POST). Also serves
  // `GET /metrics`: the global obs::MetricsRegistry text exposition (this
  // frontend's instruments carry the metrics_label() suffix).
  net::HttpResponse HandleHttp(const net::HttpRequest& request,
                               util::Timestamp now);

  // Direct in-process API (OCSP stapling, benches): the precomputed or
  // freshly signed response DER for one serial. Bypasses admission — the
  // caller is in-process, not a queued network client. Returns nullptr if
  // no responder is attached for `issuer_key_hash`.
  std::shared_ptr<const Bytes> Staple(BytesView issuer_key_hash,
                                      const x509::Serial& serial,
                                      util::Timestamp now);

  // Batch-signs a response for every record in the index (thread-pool
  // fan-out, deterministic output). Returns the number signed.
  std::size_t RebuildAll(util::Timestamp now);

  // Staleness-driven refresh: re-signs cached responses whose validity
  // window ends within `refresh_headroom_seconds` of `now`. Returns the
  // number re-signed. Intended to run from a maintenance tick so the hot
  // path never pays for re-signing.
  std::size_t RefreshStale(util::Timestamp now);

  // Applies buffered responder mutations to the index now (normally done
  // lazily on the next request).
  void Flush();

  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;    // absent from cache
    std::uint64_t cache_expired = 0;   // present but past serve_until
    std::uint64_t signed_on_demand = 0;
    std::uint64_t batch_signed = 0;
    std::uint64_t refreshed = 0;
    std::uint64_t shed = 0;            // 503s
    std::uint64_t malformed = 0;
    std::uint64_t unauthorized = 0;
    std::uint64_t staples = 0;
    std::uint64_t status_updates = 0;  // observer events applied
  };
  Counters counters() const;

  // Compatibility shim over the lock-free latency histogram: count, mean,
  // min, and max of served-request latency in seconds (variance reports 0 —
  // the histogram keeps moments, not samples). Empty when record_latency is
  // off. Prefer latency_histogram() for quantiles.
  util::Accumulator latency() const;

  // The per-request latency distribution in nanoseconds.
  obs::HistogramSnapshot latency_histogram() const;

  // Label suffix of this instance's registry instruments, "frontend=N"
  // (e.g. "serve.requests{frontend=N}" in the /metrics exposition).
  const std::string& metrics_label() const { return metrics_label_; }

  const StatusIndex& index() const { return index_; }
  const ResponseCache& cache() const { return cache_; }
  const FrontendOptions& options() const { return options_; }

  // --- admission introspection (tests saturate queues deterministically) --
  std::size_t ShardOf(BytesView issuer_key_hash,
                      const x509::Serial& serial) const;
  bool TryEnterShard(std::size_t shard);  // occupies one admission slot
  void ExitShard(std::size_t shard);      // releases it

 private:
  struct Instruments;

  const ocsp::Responder* FindResponder(BytesView issuer_key_hash) const;
  void OnMutation(const ocsp::Responder& responder, const x509::Serial& serial,
                  const std::optional<ocsp::Responder::RecordView>& record);
  void FlushLocked();
  void MaybeFlush();
  ResponseCache::Entry SignEntry(const ocsp::Responder& responder,
                                 const StatusKey& key, util::Timestamp now);
  ServeResult ServeParsed(const ocsp::OcspRequest& request,
                          util::Timestamp now);
  void EnsurePool();

  FrontendOptions options_;
  StatusIndex index_;
  ResponseCache cache_;
  std::unordered_map<Bytes, ocsp::Responder*, StatusKeyHash> responders_;

  // Buffered observer events, applied as one Apply() batch.
  std::mutex pending_mu_;
  std::vector<StatusIndex::Update> pending_;
  std::atomic<bool> has_pending_{false};

  // Admission state: in-flight request count per shard.
  std::unique_ptr<std::atomic<std::size_t>[]> inflight_;

  // Batch-signing pool, created on first use; maintenance calls serialized.
  std::mutex maintenance_mu_;
  std::unique_ptr<util::ThreadPool> pool_;

  // Registry instruments ("serve.*{frontend=N}"): sharded counters and the
  // lock-free latency histogram that replaced the old mutex-guarded
  // accumulator — the hot path never takes a lock for accounting.
  std::string metrics_label_;
  std::unique_ptr<Instruments> metrics_;

  std::shared_ptr<const Bytes> try_later_der_;
  std::shared_ptr<const Bytes> malformed_der_;
  std::shared_ptr<const Bytes> unauthorized_der_;
};

}  // namespace rev::serve
