// A sharded, read-mostly status index over (issuer-key-hash, serial) →
// revocation record, the lookup structure behind the serving frontend.
//
// Readers never block writers and writers never corrupt readers: each shard
// publishes an immutable snapshot map behind a shared_ptr. A batch update
// builds the replacement map *outside* the reader-visible critical section
// and swaps the pointer in one step (the "epoch swap"); a reader that
// grabbed the old snapshot keeps reading a consistent — merely slightly
// stale — view. See docs/serving.md for the invariants.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ocsp/responder.h"
#include "util/bytes.h"
#include "x509/certificate.h"

namespace rev::serve {

// Flat lookup key: issuer key hash (32 bytes) followed by the serial.
// Serials are length-prefixed implicitly by the fixed-size hash prefix, so
// distinct (issuer, serial) pairs never collide.
using StatusKey = Bytes;

StatusKey MakeStatusKey(BytesView issuer_key_hash, const x509::Serial& serial);

// Splits a key back into its serial half (the issuer hash is the first 32
// bytes).
x509::Serial SerialOfKey(const StatusKey& key);
BytesView IssuerHashOfKey(const StatusKey& key);

struct StatusKeyHash {
  std::size_t operator()(const StatusKey& key) const noexcept {
    // FNV-1a; keys already contain a cryptographic hash prefix, so simple
    // mixing is plenty.
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint8_t b : key) h = (h ^ b) * 1099511628211ull;
    return static_cast<std::size_t>(h);
  }
};

class StatusIndex {
 public:
  using Record = ocsp::Responder::RecordView;

  struct Update {
    StatusKey key;
    std::optional<Record> record;  // nullopt = erase (serve `unknown`)
  };

  explicit StatusIndex(std::size_t num_shards = 16);

  // Applies a batch of upserts/erases. Per shard the whole sub-batch
  // becomes visible atomically (snapshot swap); the epoch is bumped once
  // after every affected shard has swapped. Writers are serialized.
  void Apply(const std::vector<Update>& updates);

  // Point read: the record for `key`, or nullopt. Wait-free apart from a
  // brief shared lock taken to copy the shard's snapshot pointer.
  std::optional<Record> Lookup(const StatusKey& key) const;

  // All keys currently present, sorted (deterministic rebuild order).
  std::vector<StatusKey> SortedKeys() const;

  std::size_t size() const;
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t ShardOf(const StatusKey& key) const {
    return StatusKeyHash{}(key) % shards_.size();
  }

 private:
  using Map = std::unordered_map<StatusKey, Record, StatusKeyHash>;
  using Snapshot = std::shared_ptr<const Map>;

  struct Shard {
    mutable std::shared_mutex mu;  // guards `snap` pointer, not map contents
    Snapshot snap = std::make_shared<Map>();
  };

  Snapshot SnapshotOf(std::size_t shard) const;

  std::vector<Shard> shards_;
  std::mutex writer_mu_;  // serializes Apply so no batch is lost
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace rev::serve
