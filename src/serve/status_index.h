// A sharded, read-mostly status index over (issuer-key-hash, serial) →
// revocation record, the lookup structure behind the serving frontend.
//
// Readers never block writers and writers never corrupt readers: each shard
// publishes an immutable snapshot map behind a shared_ptr. A batch update
// builds the replacement map *outside* the reader-visible critical section
// and swaps the pointer in one step (the "epoch swap"); a reader that
// grabbed the old snapshot keeps reading a consistent — merely slightly
// stale — view. See docs/serving.md for the invariants.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ocsp/responder.h"
#include "util/bytes.h"
#include "x509/certificate.h"

namespace rev::serve {

// Flat lookup key: issuer key hash (32 bytes) followed by the serial.
// Serials are length-prefixed implicitly by the fixed-size hash prefix, so
// distinct (issuer, serial) pairs never collide.
using StatusKey = Bytes;

// `serial_be` is the unsigned big-endian magnitude (an x509::Serial, or a
// borrowed view of one straight out of a parsed request).
StatusKey MakeStatusKey(BytesView issuer_key_hash, BytesView serial_be);

// Splits a key back into its serial half (the issuer hash is the first 32
// bytes).
x509::Serial SerialOfKey(BytesView key);
BytesView IssuerHashOfKey(BytesView key);

// Transparent (C++20 heterogeneous-lookup) hash/eq: the serve hot path
// probes the index and cache maps with a BytesView over an op's inline key
// buffer, so a lookup never materializes a heap StatusKey.
struct StatusKeyHash {
  using is_transparent = void;
  std::size_t operator()(BytesView key) const noexcept {
    // Word-at-a-time multiply-xor mix. Keys embed a cryptographic hash, so
    // cheap mixing is plenty — but it must be word-wise: byte-serial FNV
    // over a 40-byte key costs ~3 cycles/byte and was the single largest
    // line item on the serve hot path (hashed up to 3x per request).
    std::uint64_t h = 0x9E3779B97F4A7C15ull ^ key.size();
    std::size_t i = 0;
    for (; i + 8 <= key.size(); i += 8) {
      std::uint64_t w;
      std::memcpy(&w, key.data() + i, 8);
      h = (h ^ w) * 0x9DDFEA08EB382D69ull;
      h ^= h >> 32;
    }
    if (i < key.size()) {
      std::uint64_t tail = 0;
      std::memcpy(&tail, key.data() + i, key.size() - i);
      h = (h ^ tail) * 0x9DDFEA08EB382D69ull;
      h ^= h >> 32;
    }
    return static_cast<std::size_t>(h);
  }
  std::size_t operator()(const StatusKey& key) const noexcept {
    return (*this)(BytesView(key));
  }
};
struct StatusKeyEq {
  using is_transparent = void;
  bool operator()(BytesView a, BytesView b) const noexcept {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

class StatusIndex {
 public:
  using Record = ocsp::Responder::RecordView;

  struct Update {
    StatusKey key;
    std::optional<Record> record;  // nullopt = erase (serve `unknown`)
  };

  explicit StatusIndex(std::size_t num_shards = 16);

  // Applies a batch of upserts/erases. Per shard the whole sub-batch
  // becomes visible atomically (snapshot swap); the epoch is bumped once
  // after every affected shard has swapped. Writers are serialized.
  void Apply(const std::vector<Update>& updates);

  // Point read: the record for `key`, or nullopt. Wait-free apart from a
  // brief shared lock taken to copy the shard's snapshot pointer.
  std::optional<Record> Lookup(BytesView key) const;

  // A pinned per-shard snapshot for batched readers: the serve run loop
  // acquires one view per drained batch and resolves every key in the batch
  // against it, paying the shared-lock + shared_ptr copy once instead of
  // once per request. Keys looked up through a view MUST belong to this
  // view's shard (the run loop guarantees it: a shard's queue only ever
  // holds that shard's keys). The view keeps its snapshot alive, so a
  // concurrent Apply() never invalidates it — it merely becomes one epoch
  // stale, which the epoch() check at publish time accounts for.
  class ShardView {
   public:
    std::optional<Record> Lookup(BytesView key) const {
      const auto it = snap_->find(key);
      if (it == snap_->end()) return std::nullopt;
      return it->second;
    }

   private:
    friend class StatusIndex;
    using Snapshot = std::shared_ptr<const std::unordered_map<
        StatusKey, Record, StatusKeyHash, StatusKeyEq>>;
    explicit ShardView(Snapshot snap) : snap_(std::move(snap)) {}
    Snapshot snap_;
  };
  ShardView ViewOf(std::size_t shard) const;

  // All keys currently present, sorted (deterministic rebuild order).
  std::vector<StatusKey> SortedKeys() const;

  // Full-state export for the replication channel (src/fleet): every
  // (key, record) pair, sorted by key so the serialized snapshot is
  // byte-identical no matter which thread exported it. Each shard's
  // snapshot is pinned once; the result is consistent per shard and at
  // worst one in-flight Apply() stale overall — exactly the guarantee a
  // lag-tracked replica needs.
  std::vector<std::pair<StatusKey, Record>> ExportRecords() const;

  std::size_t size() const;
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t ShardOf(BytesView key) const {
    return StatusKeyHash{}(key) % shards_.size();
  }

 private:
  using Map =
      std::unordered_map<StatusKey, Record, StatusKeyHash, StatusKeyEq>;
  using Snapshot = std::shared_ptr<const Map>;

  struct Shard {
    mutable std::shared_mutex mu;  // guards `snap` pointer, not map contents
    Snapshot snap = std::make_shared<Map>();
  };

  Snapshot SnapshotOf(std::size_t shard) const;

  std::vector<Shard> shards_;
  std::mutex writer_mu_;  // serializes Apply so no batch is lost
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace rev::serve
